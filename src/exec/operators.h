// Join, set-operation, and aggregation kernels shared by the executor.
//
// The hash-join kernels are the shared-build classes JoinChain /
// AntiJoinProbe: they hash the build side(s) once and then let any number
// of threads probe disjoint row ranges concurrently — the partition-aware
// probe path used by parallel conflict detection and the (serial or
// partitioned) executor. AntiJoinRows remains as a one-shot convenience
// wrapper (build + probe in a single call) over AntiJoinProbe, so both
// shapes share one implementation of the join semantics (equi-key
// extraction, NULL keys never match, residual evaluation, match order).
#pragma once

#include <unordered_map>
#include <vector>

#include "exec/executor.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"

namespace hippo::exec {

/// Hash aggregation for an AggregateNode over a materialized input.
/// Groups appear in first-occurrence order; a global aggregate (no GROUP
/// BY) over an empty input yields one row (COUNT = 0, other aggregates
/// NULL), per SQL semantics.
Result<std::vector<Row>> AggregateRows(const AggregateNode& agg,
                                       const std::vector<Row>& input);

/// \brief A left-deep chain of hash/nested-loop joins whose build sides
/// are hashed once and probed read-only.
///
/// Level i joins the accumulated prefix (probe input + build sides of the
/// levels before it) against `build_rows` under `condition` (bound over
/// the concatenated schema; null condition = cartesian product). After
/// construction the chain is immutable: Probe() is const and thread-safe,
/// so disjoint slices of the probe input can be evaluated concurrently —
/// each partition pays zero build cost. Probe(out) appends result rows in
/// exactly the order the materializing executor produces for the same
/// left-deep plan (probe order outer, build-insertion order inner, level
/// by level), so slice outputs concatenated in slice order are
/// bit-identical to a serial evaluation.
class JoinChain {
 public:
  struct LevelSpec {
    /// Materialized build input. Not owned; must outlive the chain.
    const std::vector<Row>* build_rows = nullptr;
    /// Join condition over concat(prefix, build row); null for a product.
    /// Not owned; must outlive the chain.
    const Expr* condition = nullptr;
    /// Column count of one build row (needed when build_rows is empty).
    size_t build_width = 0;
  };

  /// `probe_width`: column count of one probe row. `final_filter`
  /// (optional, not owned) is applied to complete output rows.
  JoinChain(size_t probe_width, std::vector<LevelSpec> levels,
            const Expr* final_filter);

  /// Evaluates probe rows [begin, end) through the chain, appending
  /// result rows (width = probe + all build widths) to `out`.
  void Probe(const std::vector<Row>& probe_rows, size_t begin, size_t end,
             std::vector<Row>* out) const;

  size_t output_width() const { return output_width_; }

 private:
  struct Level {
    const std::vector<Row>* rows;
    size_t width;
    bool has_equi;
    std::vector<int> left_keys;   ///< indexes into the accumulated prefix
    ExprPtr residual;             ///< owned remainder of an equi condition
    const Expr* condition;        ///< full condition for the NL/product path
    /// Equi-key hash table: key -> indexes into `rows`, insertion order.
    std::unordered_map<Row, std::vector<uint32_t>, RowHasher, RowEq> build;
  };

  void Descend(size_t level, Row* work, std::vector<Row>* out) const;

  std::vector<Level> levels_;
  const Expr* final_filter_;
  size_t output_width_;
};

/// \brief Anti-join with a shared build side: left rows with NO right
/// partner satisfying `condition`.
///
/// Builds the right-side hash table (or keeps the nested-loop fallback
/// input) once; Probe() is const and thread-safe, so disjoint slices of
/// the left input can run concurrently. Output order within a slice is
/// left order, as AntiJoinRows produces.
class AntiJoinProbe {
 public:
  /// `right` and `condition` are not owned and must outlive the probe.
  AntiJoinProbe(const std::vector<Row>* right, const Expr* condition,
                size_t left_width);

  /// Appends every left row in [begin, end) with no right match to `out`.
  void Probe(const std::vector<Row>& left, size_t begin, size_t end,
             std::vector<Row>* out) const;

 private:
  const std::vector<Row>* right_;
  const Expr* condition_;
  bool has_equi_;
  std::vector<int> left_keys_;
  ExprPtr residual_;
  std::unordered_map<Row, std::vector<uint32_t>, RowHasher, RowEq> build_;
};

/// Anti join: rows of `left` with no `right` partner satisfying `condition`.
void AntiJoinRows(const std::vector<Row>& left, const std::vector<Row>& right,
                  const Expr& condition, size_t left_width,
                  std::vector<Row>* out);

/// Set operations (inputs need not be deduplicated; outputs are sets).
std::vector<Row> UnionRows(std::vector<Row> left,
                           const std::vector<Row>& right);
std::vector<Row> DifferenceRows(const std::vector<Row>& left,
                                const std::vector<Row>& right);
std::vector<Row> IntersectRows(const std::vector<Row>& left,
                               const std::vector<Row>& right);

/// Removes duplicate rows, preserving first occurrence order.
std::vector<Row> DedupRows(std::vector<Row> rows);

}  // namespace hippo::exec
