// Join, set-operation, and aggregation kernels shared by the executor.
//
// The hash-join kernels are the shared-build classes JoinChain /
// AntiJoinProbe: they hash the build side(s) once and then let any number
// of threads probe disjoint row ranges concurrently — the partition-aware
// probe path used by parallel conflict detection and the (serial or
// partitioned) executor. AntiJoinRows remains as a one-shot convenience
// wrapper (build + probe in a single call) over AntiJoinProbe, so both
// shapes share one implementation of the join semantics (equi-key
// extraction, NULL keys never match, residual evaluation, match order).
#pragma once

#include <unordered_map>
#include <vector>

#include "exec/executor.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"
#include "storage/column_batch.h"

namespace hippo::exec {

/// Hash aggregation for an AggregateNode over a materialized input.
/// Groups appear in first-occurrence order; a global aggregate (no GROUP
/// BY) over an empty input yields one row (COUNT = 0, other aggregates
/// NULL), per SQL semantics.
Result<std::vector<Row>> AggregateRows(const AggregateNode& agg,
                                       const std::vector<Row>& input);

/// \brief A left-deep chain of hash/nested-loop joins whose build sides
/// are hashed once and probed read-only.
///
/// Level i joins the accumulated prefix (probe input + build sides of the
/// levels before it) against `build_rows` under `condition` (bound over
/// the concatenated schema; null condition = cartesian product). After
/// construction the chain is immutable: Probe() is const and thread-safe,
/// so disjoint slices of the probe input can be evaluated concurrently —
/// each partition pays zero build cost. Probe(out) appends result rows in
/// exactly the order the materializing executor produces for the same
/// left-deep plan (probe order outer, build-insertion order inner, level
/// by level), so slice outputs concatenated in slice order are
/// bit-identical to a serial evaluation.
class JoinChain {
 public:
  struct LevelSpec {
    /// Materialized build input. Not owned; must outlive the chain.
    const std::vector<Row>* build_rows = nullptr;
    /// Join condition over concat(prefix, build row); null for a product.
    /// Not owned; must outlive the chain.
    const Expr* condition = nullptr;
    /// Column count of one build row (needed when build_rows is empty).
    size_t build_width = 0;
  };

  /// `probe_width`: column count of one probe row. `final_filter`
  /// (optional, not owned) is applied to complete output rows.
  JoinChain(size_t probe_width, std::vector<LevelSpec> levels,
            const Expr* final_filter);

  /// Evaluates probe rows [begin, end) through the chain, appending
  /// result rows (width = probe + all build widths) to `out`.
  void Probe(const std::vector<Row>& probe_rows, size_t begin, size_t end,
             std::vector<Row>* out) const;

  size_t output_width() const { return output_width_; }

 private:
  struct Level {
    const std::vector<Row>* rows;
    size_t width;
    bool has_equi;
    std::vector<int> left_keys;   ///< indexes into the accumulated prefix
    ExprPtr residual;             ///< owned remainder of an equi condition
    const Expr* condition;        ///< full condition for the NL/product path
    /// Equi-key hash table: key -> indexes into `rows`, insertion order.
    std::unordered_map<Row, std::vector<uint32_t>, RowHasher, RowEq> build;
  };

  void Descend(size_t level, Row* work, std::vector<Row>* out) const;

  std::vector<Level> levels_;
  const Expr* final_filter_;
  size_t output_width_;
};

/// \brief Anti-join with a shared build side: left rows with NO right
/// partner satisfying `condition`.
///
/// Builds the right-side hash table (or keeps the nested-loop fallback
/// input) once; Probe() is const and thread-safe, so disjoint slices of
/// the left input can run concurrently. Output order within a slice is
/// left order, as AntiJoinRows produces.
class AntiJoinProbe {
 public:
  /// `right` and `condition` are not owned and must outlive the probe.
  AntiJoinProbe(const std::vector<Row>* right, const Expr* condition,
                size_t left_width);

  /// Appends every left row in [begin, end) with no right match to `out`.
  void Probe(const std::vector<Row>& left, size_t begin, size_t end,
             std::vector<Row>* out) const;

 private:
  const std::vector<Row>* right_;
  const Expr* condition_;
  bool has_equi_;
  std::vector<int> left_keys_;
  ExprPtr residual_;
  std::unordered_map<Row, std::vector<uint32_t>, RowHasher, RowEq> build_;
};

/// Anti join: rows of `left` with no `right` partner satisfying `condition`.
void AntiJoinRows(const std::vector<Row>& left, const std::vector<Row>& right,
                  const Expr& condition, size_t left_width,
                  std::vector<Row>* out);

/// Set operations (inputs need not be deduplicated; outputs are sets).
std::vector<Row> UnionRows(std::vector<Row> left,
                           const std::vector<Row>& right);
std::vector<Row> DifferenceRows(const std::vector<Row>& left,
                                const std::vector<Row>& right);
std::vector<Row> IntersectRows(const std::vector<Row>& left,
                               const std::vector<Row>& right);

/// Removes duplicate rows, preserving first occurrence order.
std::vector<Row> DedupRows(std::vector<Row> rows);

// ---------------------------------------------------------------------------
// Columnar (batch) kernels — bit-identical counterparts of the row kernels
// above. They operate on logical row *indexes* into shared ColumnBatches:
// joins emit flat index tuples instead of materialized rows, anti-joins emit
// surviving left indexes (a selection narrowing), and key hashes are
// computed over column slices via ColumnVector::HashAt (== Value::Hash).
// ---------------------------------------------------------------------------

/// \brief Batch counterpart of JoinChain: a left-deep chain of hash/NL
/// joins over ColumnBatches, probed by index tuple.
///
/// Probe(out) appends one flat tuple of `tuple_arity()` logical indexes —
/// (probe row, level-0 build row, ...) — per result, in exactly the order
/// JoinChain::Probe emits materialized rows for the same inputs: probe
/// order outer, build-insertion order inner (hash buckets keep insertion
/// order; equal-hash-different-key candidates are filtered by column
/// equality, which preserves order), residual and final filters applied at
/// the same points with identical Kleene semantics. Materialize() gathers
/// tuples into an output batch whose rows equal the row engine's output.
class BatchJoinChain {
 public:
  struct LevelSpec {
    /// Build input. Not owned; must outlive the chain.
    const ColumnBatch* build = nullptr;
    /// Join condition over concat(prefix, build row); null for a product.
    const Expr* condition = nullptr;
  };

  BatchJoinChain(const ColumnBatch* probe, std::vector<LevelSpec> levels,
                 const Expr* final_filter);

  /// Logical indexes per output tuple: probe + one per level.
  size_t tuple_arity() const { return levels_.size() + 1; }
  /// Total output columns across all segments.
  size_t output_width() const { return offsets_.back(); }
  /// Segment 0 is the probe batch; segment s >= 1 is level s-1's build.
  const ColumnBatch& segment(size_t s) const {
    return s == 0 ? *probe_ : *levels_[s - 1].batch;
  }

  /// Evaluates probe rows [begin, end) through the chain, appending flat
  /// index tuples to `out`. Const and thread-safe (shared build tables).
  void Probe(size_t begin, size_t end, std::vector<uint32_t>* out) const;

  /// Gathers index tuples into a materialized output batch.
  ColumnBatch Materialize(const std::vector<uint32_t>& tuples) const;

 private:
  struct Level {
    const ColumnBatch* batch;
    bool has_equi = false;
    std::vector<int> left_keys;   ///< virtual indexes into the prefix
    std::vector<int> right_keys;  ///< column indexes into `batch`
    ExprPtr residual;
    const Expr* condition;
    /// key hash -> logical build rows with that key hash, insertion order.
    std::unordered_map<size_t, std::vector<uint32_t>> build;
  };

  Value TupleValue(const uint32_t* idxs, size_t col) const;
  bool HashLeftKey(const uint32_t* idxs, const Level& level,
                   size_t* hash) const;
  bool LeftKeyEquals(const uint32_t* idxs, const Level& level,
                     uint32_t build_row) const;
  void Descend(size_t level, uint32_t* idxs, std::vector<uint32_t>* out) const;

  const ColumnBatch* probe_;
  std::vector<Level> levels_;
  const Expr* final_filter_;
  /// offsets_[s] = first virtual column of segment s; back() = total width.
  std::vector<size_t> offsets_;
};

/// \brief Batch counterpart of AntiJoinProbe: left logical indexes with NO
/// right partner satisfying `condition`, emitted in left order.
class BatchAntiJoinProbe {
 public:
  /// Inputs are not owned and must outlive the probe.
  BatchAntiJoinProbe(const ColumnBatch* left, const ColumnBatch* right,
                     const Expr* condition);

  /// Appends every surviving left logical index in [begin, end) to `out`.
  void Probe(size_t begin, size_t end, std::vector<uint32_t>* out) const;

 private:
  bool PairPredicate(const Expr& expr, uint32_t left_row,
                     uint32_t right_row) const;

  const ColumnBatch* left_;
  const ColumnBatch* right_;
  const Expr* condition_;
  bool has_equi_ = false;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  ExprPtr residual_;
  std::unordered_map<size_t, std::vector<uint32_t>> build_;
};

/// Removes duplicate logical rows of `batch` (first occurrence wins, same
/// order DedupRows produces) by narrowing the selection.
ColumnBatch DedupBatch(const ColumnBatch& batch);

}  // namespace hippo::exec
