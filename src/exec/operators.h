// Join, set-operation, and aggregation kernels shared by the executor.
#pragma once

#include <vector>

#include "exec/executor.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"

namespace hippo::exec {

/// Hash aggregation for an AggregateNode over a materialized input.
/// Groups appear in first-occurrence order; a global aggregate (no GROUP
/// BY) over an empty input yields one row (COUNT = 0, other aggregates
/// NULL), per SQL semantics.
Result<std::vector<Row>> AggregateRows(const AggregateNode& agg,
                                       const std::vector<Row>& input);

/// Hash/NL inner join of two materialized inputs under `condition`
/// (bound over the concatenated schema). Appends result rows to `out`.
void JoinRows(const std::vector<Row>& left, const std::vector<Row>& right,
              const Expr& condition, size_t left_width,
              std::vector<Row>* out);

/// Anti join: rows of `left` with no `right` partner satisfying `condition`.
void AntiJoinRows(const std::vector<Row>& left, const std::vector<Row>& right,
                  const Expr& condition, size_t left_width,
                  std::vector<Row>* out);

/// Set operations (inputs need not be deduplicated; outputs are sets).
std::vector<Row> UnionRows(std::vector<Row> left,
                           const std::vector<Row>& right);
std::vector<Row> DifferenceRows(const std::vector<Row>& left,
                                const std::vector<Row>& right);
std::vector<Row> IntersectRows(const std::vector<Row>& left,
                               const std::vector<Row>& right);

/// Removes duplicate rows, preserving first occurrence order.
std::vector<Row> DedupRows(std::vector<Row> rows);

}  // namespace hippo::exec
