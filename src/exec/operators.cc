#include "exec/operators.h"

#include <unordered_map>
#include <unordered_set>

#include "exec/batch_eval.h"
#include "expr/evaluator.h"

namespace hippo::exec {

namespace {

using RowSet = std::unordered_set<Row, RowHasher, RowEq>;

Row ConcatRow(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Row KeyOf(const Row& row, const std::vector<int>& indexes) {
  Row key;
  key.reserve(indexes.size());
  for (int i : indexes) key.push_back(row[static_cast<size_t>(i)]);
  return key;
}

/// Builds (left key indexes, right key indexes, residual) from `condition`.
struct JoinSplit {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  ExprPtr residual;
  bool HasEqui() const { return !left_keys.empty(); }
};

JoinSplit SplitCondition(const Expr& condition, size_t left_width) {
  JoinSplit split;
  std::vector<EquiPair> pairs;
  SplitJoinCondition(condition, left_width, &pairs, &split.residual);
  for (const EquiPair& p : pairs) {
    split.left_keys.push_back(p.left_index);
    split.right_keys.push_back(p.right_index);
  }
  return split;
}

/// NULL join keys never match (SQL equality semantics).
bool KeyHasNull(const Row& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

/// Appends `r` to `*work`, leaving restoration to the caller (resize back
/// to the recorded width) — the DFS probe reuses one buffer per thread.
void AppendRow(Row* work, const Row& r) {
  work->insert(work->end(), r.begin(), r.end());
}

}  // namespace

JoinChain::JoinChain(size_t probe_width, std::vector<LevelSpec> levels,
                     const Expr* final_filter)
    : final_filter_(final_filter), output_width_(probe_width) {
  levels_.reserve(levels.size());
  for (LevelSpec& spec : levels) {
    Level level;
    level.rows = spec.build_rows;
    level.width = spec.build_width;
    level.condition = spec.condition;
    level.has_equi = false;
    if (spec.condition != nullptr) {
      JoinSplit split = SplitCondition(*spec.condition, output_width_);
      if (split.HasEqui()) {
        level.has_equi = true;
        level.left_keys = std::move(split.left_keys);
        level.residual = std::move(split.residual);
        level.build.reserve(level.rows->size());
        for (uint32_t i = 0; i < level.rows->size(); ++i) {
          Row key = KeyOf((*level.rows)[i], split.right_keys);
          if (KeyHasNull(key)) continue;
          level.build[std::move(key)].push_back(i);
        }
      }
    }
    output_width_ += level.width;
    levels_.push_back(std::move(level));
  }
}

void JoinChain::Descend(size_t level, Row* work,
                        std::vector<Row>* out) const {
  if (level == levels_.size()) {
    if (final_filter_ == nullptr || EvalPredicate(*final_filter_, *work)) {
      out->push_back(*work);
    }
    return;
  }
  const Level& L = levels_[level];
  size_t prefix = work->size();
  if (L.has_equi) {
    Row key = KeyOf(*work, L.left_keys);
    if (KeyHasNull(key)) return;
    auto it = L.build.find(key);
    if (it == L.build.end()) return;
    for (uint32_t r : it->second) {
      AppendRow(work, (*L.rows)[r]);
      if (L.residual == nullptr || EvalPredicate(*L.residual, *work)) {
        Descend(level + 1, work, out);
      }
      work->resize(prefix);
    }
    return;
  }
  for (const Row& r : *L.rows) {
    AppendRow(work, r);
    if (L.condition == nullptr || EvalPredicate(*L.condition, *work)) {
      Descend(level + 1, work, out);
    }
    work->resize(prefix);
  }
}

void JoinChain::Probe(const std::vector<Row>& probe_rows, size_t begin,
                      size_t end, std::vector<Row>* out) const {
  Row work;
  work.reserve(output_width_);
  for (size_t i = begin; i < end; ++i) {
    work.assign(probe_rows[i].begin(), probe_rows[i].end());
    Descend(0, &work, out);
  }
}

AntiJoinProbe::AntiJoinProbe(const std::vector<Row>* right,
                             const Expr* condition, size_t left_width)
    : right_(right), condition_(condition) {
  JoinSplit split = SplitCondition(*condition, left_width);
  has_equi_ = split.HasEqui();
  if (!has_equi_) return;
  left_keys_ = std::move(split.left_keys);
  residual_ = std::move(split.residual);
  build_.reserve(right_->size());
  for (uint32_t i = 0; i < right_->size(); ++i) {
    Row key = KeyOf((*right_)[i], split.right_keys);
    if (KeyHasNull(key)) continue;
    build_[std::move(key)].push_back(i);
  }
}

void AntiJoinProbe::Probe(const std::vector<Row>& left, size_t begin,
                          size_t end, std::vector<Row>* out) const {
  for (size_t i = begin; i < end; ++i) {
    const Row& l = left[i];
    bool matched = false;
    if (has_equi_) {
      Row key = KeyOf(l, left_keys_);
      if (!KeyHasNull(key)) {
        auto it = build_.find(key);
        if (it != build_.end()) {
          if (residual_ == nullptr) {
            matched = true;
          } else {
            for (uint32_t r : it->second) {
              if (EvalPredicate(*residual_, ConcatRow(l, (*right_)[r]))) {
                matched = true;
                break;
              }
            }
          }
        }
      }
    } else {
      for (const Row& r : *right_) {
        if (EvalPredicate(*condition_, ConcatRow(l, r))) {
          matched = true;
          break;
        }
      }
    }
    if (!matched) out->push_back(l);
  }
}

void AntiJoinRows(const std::vector<Row>& left, const std::vector<Row>& right,
                  const Expr& condition, size_t left_width,
                  std::vector<Row>* out) {
  AntiJoinProbe probe(&right, &condition, left_width);
  probe.Probe(left, 0, left.size(), out);
}

std::vector<Row> DedupRows(std::vector<Row> rows) {
  RowSet seen;
  seen.reserve(rows.size());
  std::vector<Row> out;
  out.reserve(rows.size());
  for (Row& r : rows) {
    if (seen.insert(r).second) out.push_back(std::move(r));
  }
  return out;
}

std::vector<Row> UnionRows(std::vector<Row> left,
                           const std::vector<Row>& right) {
  left.insert(left.end(), right.begin(), right.end());
  return DedupRows(std::move(left));
}

std::vector<Row> DifferenceRows(const std::vector<Row>& left,
                                const std::vector<Row>& right) {
  RowSet exclude(right.begin(), right.end());
  RowSet seen;
  std::vector<Row> out;
  for (const Row& l : left) {
    if (exclude.count(l)) continue;
    if (seen.insert(l).second) out.push_back(l);
  }
  return out;
}

std::vector<Row> IntersectRows(const std::vector<Row>& left,
                               const std::vector<Row>& right) {
  RowSet include(right.begin(), right.end());
  RowSet seen;
  std::vector<Row> out;
  for (const Row& l : left) {
    if (!include.count(l)) continue;
    if (seen.insert(l).second) out.push_back(l);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Columnar kernels
// ---------------------------------------------------------------------------

BatchJoinChain::BatchJoinChain(const ColumnBatch* probe,
                               std::vector<LevelSpec> levels,
                               const Expr* final_filter)
    : probe_(probe), final_filter_(final_filter) {
  offsets_.push_back(0);
  offsets_.push_back(probe->NumColumns());
  levels_.reserve(levels.size());
  for (LevelSpec& spec : levels) {
    Level level;
    level.batch = spec.build;
    level.condition = spec.condition;
    size_t prefix_width = offsets_.back();
    if (spec.condition != nullptr) {
      JoinSplit split = SplitCondition(*spec.condition, prefix_width);
      if (split.HasEqui()) {
        level.has_equi = true;
        level.left_keys = std::move(split.left_keys);
        level.right_keys = std::move(split.right_keys);
        level.residual = std::move(split.residual);
        const ColumnBatch& b = *level.batch;
        level.build.reserve(b.NumRows());
        for (uint32_t j = 0; j < b.NumRows(); ++j) {
          uint32_t p = b.Physical(j);
          // Seed with the key arity, matching HashRow of the key tuple;
          // rows with a NULL key never match and are not built.
          size_t hash = level.right_keys.size();
          bool null_key = false;
          for (int rk : level.right_keys) {
            const ColumnVector& cv = b.col(static_cast<size_t>(rk));
            if (cv.IsNull(p)) {
              null_key = true;
              break;
            }
            HashCombine(&hash, cv.HashAt(p));
          }
          if (null_key) continue;
          level.build[hash].push_back(j);
        }
      }
    }
    offsets_.push_back(prefix_width + level.batch->NumColumns());
    levels_.push_back(std::move(level));
  }
}

Value BatchJoinChain::TupleValue(const uint32_t* idxs, size_t col) const {
  size_t s = 0;
  while (offsets_[s + 1] <= col) ++s;
  const ColumnBatch& b = segment(s);
  return b.col(col - offsets_[s]).ValueAt(b.Physical(idxs[s]));
}

bool BatchJoinChain::HashLeftKey(const uint32_t* idxs, const Level& level,
                                 size_t* hash) const {
  size_t seed = level.left_keys.size();
  for (int lk : level.left_keys) {
    size_t col = static_cast<size_t>(lk);
    size_t s = 0;
    while (offsets_[s + 1] <= col) ++s;
    const ColumnBatch& b = segment(s);
    uint32_t p = b.Physical(idxs[s]);
    const ColumnVector& cv = b.col(col - offsets_[s]);
    if (cv.IsNull(p)) return false;  // NULL join keys never match
    HashCombine(&seed, cv.HashAt(p));
  }
  *hash = seed;
  return true;
}

bool BatchJoinChain::LeftKeyEquals(const uint32_t* idxs, const Level& level,
                                   uint32_t build_row) const {
  const ColumnBatch& rb = *level.batch;
  uint32_t rp = rb.Physical(build_row);
  for (size_t k = 0; k < level.left_keys.size(); ++k) {
    size_t col = static_cast<size_t>(level.left_keys[k]);
    size_t s = 0;
    while (offsets_[s + 1] <= col) ++s;
    const ColumnBatch& b = segment(s);
    uint32_t p = b.Physical(idxs[s]);
    const ColumnVector& lcv = b.col(col - offsets_[s]);
    const ColumnVector& rcv =
        rb.col(static_cast<size_t>(level.right_keys[k]));
    if (!lcv.EqualsAt(p, rcv, rp)) return false;
  }
  return true;
}

void BatchJoinChain::Descend(size_t level, uint32_t* idxs,
                             std::vector<uint32_t>* out) const {
  if (level == levels_.size()) {
    if (final_filter_ != nullptr) {
      auto at = [&](size_t col) { return TupleValue(idxs, col); };
      if (!EvalPredicateOver(*final_filter_, at)) return;
    }
    out->insert(out->end(), idxs, idxs + levels_.size() + 1);
    return;
  }
  const Level& L = levels_[level];
  if (L.has_equi) {
    size_t hash;
    if (!HashLeftKey(idxs, L, &hash)) return;
    auto it = L.build.find(hash);
    if (it == L.build.end()) return;
    for (uint32_t j : it->second) {
      if (!LeftKeyEquals(idxs, L, j)) continue;  // same-hash different key
      idxs[level + 1] = j;
      if (L.residual != nullptr) {
        auto at = [&](size_t col) { return TupleValue(idxs, col); };
        if (!EvalPredicateOver(*L.residual, at)) continue;
      }
      Descend(level + 1, idxs, out);
    }
    return;
  }
  size_t n = L.batch->NumRows();
  for (uint32_t j = 0; j < n; ++j) {
    idxs[level + 1] = j;
    if (L.condition != nullptr) {
      auto at = [&](size_t col) { return TupleValue(idxs, col); };
      if (!EvalPredicateOver(*L.condition, at)) continue;
    }
    Descend(level + 1, idxs, out);
  }
}

void BatchJoinChain::Probe(size_t begin, size_t end,
                           std::vector<uint32_t>* out) const {
  std::vector<uint32_t> idxs(levels_.size() + 1);
  for (size_t i = begin; i < end; ++i) {
    idxs[0] = static_cast<uint32_t>(i);
    Descend(0, idxs.data(), out);
  }
}

ColumnBatch BatchJoinChain::Materialize(
    const std::vector<uint32_t>& tuples) const {
  size_t arity = tuple_arity();
  size_t n = tuples.size() / arity;
  std::vector<ColumnVectorPtr> out_cols;
  out_cols.reserve(output_width());
  for (size_t s = 0; s < levels_.size() + 1; ++s) {
    const ColumnBatch& b = segment(s);
    for (size_t c = 0; c < b.NumColumns(); ++c) {
      const ColumnVector& src = b.col(c);
      auto col = std::make_shared<ColumnVector>(src.type());
      col->Reserve(n);
      for (size_t t = 0; t < n; ++t) {
        col->AppendFrom(src, b.Physical(tuples[t * arity + s]));
      }
      out_cols.push_back(std::move(col));
    }
  }
  return ColumnBatch(std::move(out_cols), n);
}

BatchAntiJoinProbe::BatchAntiJoinProbe(const ColumnBatch* left,
                                       const ColumnBatch* right,
                                       const Expr* condition)
    : left_(left), right_(right), condition_(condition) {
  JoinSplit split = SplitCondition(*condition, left->NumColumns());
  has_equi_ = split.HasEqui();
  if (!has_equi_) return;
  left_keys_ = std::move(split.left_keys);
  right_keys_ = std::move(split.right_keys);
  residual_ = std::move(split.residual);
  build_.reserve(right_->NumRows());
  for (uint32_t j = 0; j < right_->NumRows(); ++j) {
    uint32_t p = right_->Physical(j);
    size_t hash = right_keys_.size();
    bool null_key = false;
    for (int rk : right_keys_) {
      const ColumnVector& cv = right_->col(static_cast<size_t>(rk));
      if (cv.IsNull(p)) {
        null_key = true;
        break;
      }
      HashCombine(&hash, cv.HashAt(p));
    }
    if (null_key) continue;
    build_[hash].push_back(j);
  }
}

bool BatchAntiJoinProbe::PairPredicate(const Expr& expr, uint32_t left_row,
                                       uint32_t right_row) const {
  size_t lw = left_->NumColumns();
  auto at = [&](size_t col) {
    if (col < lw) {
      return left_->col(col).ValueAt(left_->Physical(left_row));
    }
    return right_->col(col - lw).ValueAt(right_->Physical(right_row));
  };
  return EvalPredicateOver(expr, at);
}

void BatchAntiJoinProbe::Probe(size_t begin, size_t end,
                               std::vector<uint32_t>* out) const {
  for (size_t i = begin; i < end; ++i) {
    uint32_t li = static_cast<uint32_t>(i);
    bool matched = false;
    if (has_equi_) {
      uint32_t p = left_->Physical(li);
      size_t hash = left_keys_.size();
      bool null_key = false;
      for (int lk : left_keys_) {
        const ColumnVector& cv = left_->col(static_cast<size_t>(lk));
        if (cv.IsNull(p)) {
          null_key = true;  // NULL key: no partner, the left row survives
          break;
        }
        HashCombine(&hash, cv.HashAt(p));
      }
      if (!null_key) {
        auto it = build_.find(hash);
        if (it != build_.end()) {
          for (uint32_t j : it->second) {
            bool keys_equal = true;
            uint32_t rp = right_->Physical(j);
            for (size_t k = 0; k < left_keys_.size(); ++k) {
              const ColumnVector& lcv =
                  left_->col(static_cast<size_t>(left_keys_[k]));
              const ColumnVector& rcv =
                  right_->col(static_cast<size_t>(right_keys_[k]));
              if (!lcv.EqualsAt(p, rcv, rp)) {
                keys_equal = false;
                break;
              }
            }
            if (!keys_equal) continue;
            if (residual_ == nullptr || PairPredicate(*residual_, li, j)) {
              matched = true;
              break;
            }
          }
        }
      }
    } else {
      for (uint32_t j = 0; j < right_->NumRows(); ++j) {
        if (PairPredicate(*condition_, li, j)) {
          matched = true;
          break;
        }
      }
    }
    if (!matched) out->push_back(li);
  }
}

ColumnBatch DedupBatch(const ColumnBatch& batch) {
  size_t n = batch.NumRows();
  std::unordered_map<size_t, std::vector<uint32_t>> buckets;
  buckets.reserve(n);
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t h = batch.RowHashAt(i);
    std::vector<uint32_t>& bucket = buckets[h];
    bool dup = false;
    for (uint32_t j : bucket) {
      if (batch.RowEqualsAt(i, batch, j)) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    bucket.push_back(static_cast<uint32_t>(i));
    keep.push_back(static_cast<uint32_t>(i));
  }
  if (keep.size() == n) return batch;  // already a set: keep zero-copy
  return batch.Narrow(keep);
}

namespace {

/// Streaming accumulator for one aggregate function over one group, with
/// SQL NULL semantics: NULL inputs are skipped; COUNT(*) counts rows;
/// empty SUM/MIN/MAX/AVG are NULL, empty COUNT is 0.
struct Accumulator {
  int64_t count = 0;
  int64_t sum_i = 0;
  double sum_d = 0;
  Value extreme;  // running MIN/MAX (kNull until the first non-null input)

  void Add(const AggregateNode::AggSpec& spec, const Row& row) {
    if (spec.arg == nullptr) {  // COUNT(*)
      ++count;
      return;
    }
    Value v = EvalExpr(*spec.arg, row);
    if (v.is_null()) return;
    ++count;
    switch (spec.fn) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == TypeId::kDouble) {
          sum_d += v.AsDouble();
        } else {
          sum_i += v.AsInt();
          sum_d += static_cast<double>(v.AsInt());
        }
        break;
      case AggFunc::kMin:
        if (extreme.is_null() || v.Compare(extreme) < 0) extreme = v;
        break;
      case AggFunc::kMax:
        if (extreme.is_null() || v.Compare(extreme) > 0) extreme = v;
        break;
    }
  }

  Value Finish(const AggregateNode::AggSpec& spec) const {
    switch (spec.fn) {
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return (spec.arg != nullptr &&
                spec.arg->result_type() == TypeId::kDouble)
                   ? Value::Double(sum_d)
                   : Value::Int(sum_i);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum_d / static_cast<double>(count));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return extreme;
    }
    return Value::Null();
  }
};

}  // namespace

Result<std::vector<Row>> AggregateRows(const AggregateNode& agg,
                                       const std::vector<Row>& input) {
  const size_t n_groups = agg.NumGroupExprs();
  const auto& specs = agg.aggs();

  struct GroupState {
    Row key;
    std::vector<Accumulator> accs;
  };
  std::unordered_map<Row, size_t, RowHasher, RowEq> index;
  std::vector<GroupState> groups;  // first-occurrence order

  for (const Row& row : input) {
    Row key;
    key.reserve(n_groups);
    for (size_t g = 0; g < n_groups; ++g) {
      key.push_back(EvalExpr(agg.group_expr(g), row));
    }
    auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) {
      groups.push_back(GroupState{std::move(key),
                                  std::vector<Accumulator>(specs.size())});
    }
    GroupState& state = groups[it->second];
    for (size_t a = 0; a < specs.size(); ++a) {
      state.accs[a].Add(specs[a], row);
    }
  }

  // SQL: a global aggregate over an empty input still produces one row.
  if (groups.empty() && n_groups == 0) {
    groups.push_back(
        GroupState{Row{}, std::vector<Accumulator>(specs.size())});
  }

  std::vector<Row> out;
  out.reserve(groups.size());
  for (const GroupState& g : groups) {
    Row row = g.key;
    row.reserve(n_groups + specs.size());
    for (size_t a = 0; a < specs.size(); ++a) {
      row.push_back(g.accs[a].Finish(specs[a]));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace hippo::exec
