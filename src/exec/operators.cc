#include "exec/operators.h"

#include <unordered_map>
#include <unordered_set>

#include "expr/evaluator.h"

namespace hippo::exec {

namespace {

using RowSet = std::unordered_set<Row, RowHasher, RowEq>;

Row ConcatRow(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Row KeyOf(const Row& row, const std::vector<int>& indexes) {
  Row key;
  key.reserve(indexes.size());
  for (int i : indexes) key.push_back(row[static_cast<size_t>(i)]);
  return key;
}

/// Builds (left key indexes, right key indexes, residual) from `condition`.
struct JoinSplit {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  ExprPtr residual;
  bool HasEqui() const { return !left_keys.empty(); }
};

JoinSplit SplitCondition(const Expr& condition, size_t left_width) {
  JoinSplit split;
  std::vector<EquiPair> pairs;
  SplitJoinCondition(condition, left_width, &pairs, &split.residual);
  for (const EquiPair& p : pairs) {
    split.left_keys.push_back(p.left_index);
    split.right_keys.push_back(p.right_index);
  }
  return split;
}

/// NULL join keys never match (SQL equality semantics).
bool KeyHasNull(const Row& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

}  // namespace

void JoinRows(const std::vector<Row>& left, const std::vector<Row>& right,
              const Expr& condition, size_t left_width,
              std::vector<Row>* out) {
  JoinSplit split = SplitCondition(condition, left_width);
  if (split.HasEqui()) {
    std::unordered_map<Row, std::vector<const Row*>, RowHasher, RowEq> build;
    build.reserve(right.size());
    for (const Row& r : right) {
      Row key = KeyOf(r, split.right_keys);
      if (KeyHasNull(key)) continue;
      build[std::move(key)].push_back(&r);
    }
    for (const Row& l : left) {
      Row key = KeyOf(l, split.left_keys);
      if (KeyHasNull(key)) continue;
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (const Row* r : it->second) {
        Row joined = ConcatRow(l, *r);
        if (split.residual == nullptr ||
            EvalPredicate(*split.residual, joined)) {
          out->push_back(std::move(joined));
        }
      }
    }
    return;
  }
  for (const Row& l : left) {
    for (const Row& r : right) {
      Row joined = ConcatRow(l, r);
      if (EvalPredicate(condition, joined)) {
        out->push_back(std::move(joined));
      }
    }
  }
}

void AntiJoinRows(const std::vector<Row>& left, const std::vector<Row>& right,
                  const Expr& condition, size_t left_width,
                  std::vector<Row>* out) {
  JoinSplit split = SplitCondition(condition, left_width);
  if (split.HasEqui()) {
    std::unordered_map<Row, std::vector<const Row*>, RowHasher, RowEq> build;
    build.reserve(right.size());
    for (const Row& r : right) {
      Row key = KeyOf(r, split.right_keys);
      if (KeyHasNull(key)) continue;
      build[std::move(key)].push_back(&r);
    }
    for (const Row& l : left) {
      Row key = KeyOf(l, split.left_keys);
      bool matched = false;
      if (!KeyHasNull(key)) {
        auto it = build.find(key);
        if (it != build.end()) {
          if (split.residual == nullptr) {
            matched = true;
          } else {
            for (const Row* r : it->second) {
              if (EvalPredicate(*split.residual, ConcatRow(l, *r))) {
                matched = true;
                break;
              }
            }
          }
        }
      }
      if (!matched) out->push_back(l);
    }
    return;
  }
  for (const Row& l : left) {
    bool matched = false;
    for (const Row& r : right) {
      if (EvalPredicate(condition, ConcatRow(l, r))) {
        matched = true;
        break;
      }
    }
    if (!matched) out->push_back(l);
  }
}

std::vector<Row> DedupRows(std::vector<Row> rows) {
  RowSet seen;
  seen.reserve(rows.size());
  std::vector<Row> out;
  out.reserve(rows.size());
  for (Row& r : rows) {
    if (seen.insert(r).second) out.push_back(std::move(r));
  }
  return out;
}

std::vector<Row> UnionRows(std::vector<Row> left,
                           const std::vector<Row>& right) {
  left.insert(left.end(), right.begin(), right.end());
  return DedupRows(std::move(left));
}

std::vector<Row> DifferenceRows(const std::vector<Row>& left,
                                const std::vector<Row>& right) {
  RowSet exclude(right.begin(), right.end());
  RowSet seen;
  std::vector<Row> out;
  for (const Row& l : left) {
    if (exclude.count(l)) continue;
    if (seen.insert(l).second) out.push_back(l);
  }
  return out;
}

std::vector<Row> IntersectRows(const std::vector<Row>& left,
                               const std::vector<Row>& right) {
  RowSet include(right.begin(), right.end());
  RowSet seen;
  std::vector<Row> out;
  for (const Row& l : left) {
    if (!include.count(l)) continue;
    if (seen.insert(l).second) out.push_back(l);
  }
  return out;
}

namespace {

/// Streaming accumulator for one aggregate function over one group, with
/// SQL NULL semantics: NULL inputs are skipped; COUNT(*) counts rows;
/// empty SUM/MIN/MAX/AVG are NULL, empty COUNT is 0.
struct Accumulator {
  int64_t count = 0;
  int64_t sum_i = 0;
  double sum_d = 0;
  Value extreme;  // running MIN/MAX (kNull until the first non-null input)

  void Add(const AggregateNode::AggSpec& spec, const Row& row) {
    if (spec.arg == nullptr) {  // COUNT(*)
      ++count;
      return;
    }
    Value v = EvalExpr(*spec.arg, row);
    if (v.is_null()) return;
    ++count;
    switch (spec.fn) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == TypeId::kDouble) {
          sum_d += v.AsDouble();
        } else {
          sum_i += v.AsInt();
          sum_d += static_cast<double>(v.AsInt());
        }
        break;
      case AggFunc::kMin:
        if (extreme.is_null() || v.Compare(extreme) < 0) extreme = v;
        break;
      case AggFunc::kMax:
        if (extreme.is_null() || v.Compare(extreme) > 0) extreme = v;
        break;
    }
  }

  Value Finish(const AggregateNode::AggSpec& spec) const {
    switch (spec.fn) {
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return (spec.arg != nullptr &&
                spec.arg->result_type() == TypeId::kDouble)
                   ? Value::Double(sum_d)
                   : Value::Int(sum_i);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(sum_d / static_cast<double>(count));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return extreme;
    }
    return Value::Null();
  }
};

}  // namespace

Result<std::vector<Row>> AggregateRows(const AggregateNode& agg,
                                       const std::vector<Row>& input) {
  const size_t n_groups = agg.NumGroupExprs();
  const auto& specs = agg.aggs();

  struct GroupState {
    Row key;
    std::vector<Accumulator> accs;
  };
  std::unordered_map<Row, size_t, RowHasher, RowEq> index;
  std::vector<GroupState> groups;  // first-occurrence order

  for (const Row& row : input) {
    Row key;
    key.reserve(n_groups);
    for (size_t g = 0; g < n_groups; ++g) {
      key.push_back(EvalExpr(agg.group_expr(g), row));
    }
    auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) {
      groups.push_back(GroupState{std::move(key),
                                  std::vector<Accumulator>(specs.size())});
    }
    GroupState& state = groups[it->second];
    for (size_t a = 0; a < specs.size(); ++a) {
      state.accs[a].Add(specs[a], row);
    }
  }

  // SQL: a global aggregate over an empty input still produces one row.
  if (groups.empty() && n_groups == 0) {
    groups.push_back(
        GroupState{Row{}, std::vector<Accumulator>(specs.size())});
  }

  std::vector<Row> out;
  out.reserve(groups.size());
  for (const GroupState& g : groups) {
    Row row = g.key;
    row.reserve(n_groups + specs.size());
    for (size_t a = 0; a < specs.size(); ++a) {
      row.push_back(g.accs[a].Finish(specs[a]));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace hippo::exec
