// Small string helpers shared by the SQL front end and error reporting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hippo {

/// Lower-cases ASCII characters; SQL identifiers/keywords are
/// case-insensitive throughout Hippo.
std::string ToLower(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` equals `t` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view t);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escapes a string for inclusion in a SQL single-quoted literal.
std::string SqlQuote(std::string_view s);

}  // namespace hippo
