// Deterministic pseudo-random generator for workload generation and
// property-based tests. Fixed algorithm (xoshiro256**) so that benchmark
// inputs and test cases are reproducible across platforms and standard
// library versions (std::mt19937 distributions are not portable).
#pragma once

#include <cstdint>

#include "common/hash.h"
#include "common/macros.h"

namespace hippo {

/// Small, fast, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      si = Mix64(x);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    HIPPO_DCHECK(bound > 0);
    // Lemire-style rejection-free-enough reduction; bias is negligible for
    // the bounds used here, but we reject to stay exactly uniform.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    HIPPO_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  bool Chance(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace hippo
