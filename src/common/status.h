// Status and Result<T>: error propagation without exceptions, in the style of
// Arrow / RocksDB. All user-facing failures (SQL syntax errors, binding
// errors, unsupported query classes) are carried through these types.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace hippo {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad SQL, bad constraint spec)
  kNotFound,          ///< unknown table / column / constraint
  kAlreadyExists,     ///< duplicate table / constraint name
  kNotSupported,      ///< outside the supported query/constraint class
  kTypeError,         ///< expression type mismatch
  kInternal,          ///< invariant violation surfaced as a status
  kResourceExhausted, ///< admission control: queue full / service stopped
};

/// Returns a short human-readable name of the code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that produces no value.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy (message is shared via std::string's
/// value semantics; errors are rare and not on hot paths).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Accessors check that the result holds what is asked for; violating that is
/// a programmer error (HIPPO_CHECK).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(runtime/explicit)
    HIPPO_CHECK_MSG(!std::get<Status>(data_).ok(),
                    "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    HIPPO_CHECK_MSG(ok(), "Result::value() on error result");
    return std::get<T>(data_);
  }
  const T& value() const& {
    HIPPO_CHECK_MSG(ok(), "Result::value() on error result");
    return std::get<T>(data_);
  }
  T&& value() && {
    HIPPO_CHECK_MSG(ok(), "Result::value() on error result");
    return std::get<T>(std::move(data_));
  }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace hippo

/// Propagate a non-OK Status to the caller.
#define HIPPO_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::hippo::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

#define HIPPO_CONCAT_IMPL(a, b) a##b
#define HIPPO_CONCAT(a, b) HIPPO_CONCAT_IMPL(a, b)

/// Assign the value of a Result expression to `lhs`, or propagate its error.
#define HIPPO_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  auto HIPPO_CONCAT(_res_, __LINE__) = (rexpr);                          \
  if (!HIPPO_CONCAT(_res_, __LINE__).ok())                               \
    return HIPPO_CONCAT(_res_, __LINE__).status();                       \
  lhs = std::move(HIPPO_CONCAT(_res_, __LINE__)).value()
