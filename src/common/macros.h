// Assertion and utility macros used across the Hippo codebase.
#pragma once

#include <cstdio>
#include <cstdlib>

// Fatal invariant check. Used for programmer errors (broken internal
// invariants), never for user input; user errors travel through Status.
#define HIPPO_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HIPPO_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define HIPPO_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HIPPO_CHECK failed: %s (%s) at %s:%d\n", #cond,  \
                   (msg), __FILE__, __LINE__);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define HIPPO_DCHECK(cond) HIPPO_CHECK(cond)
#else
#define HIPPO_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#define HIPPO_DISALLOW_COPY(ClassName)      \
  ClassName(const ClassName&) = delete;     \
  ClassName& operator=(const ClassName&) = delete
