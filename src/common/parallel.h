// Small shared threading helpers used by the detector, the executor, the
// CQA prover loop, and the query service's worker pool.
#pragma once

#include <cstddef>
#include <functional>

namespace hippo {

/// Resolves a requested worker count: 0 means "one worker per hardware
/// thread" (std::thread::hardware_concurrency(), at least 1); any other
/// value is returned unchanged. Shared by DetectAll, the executor's
/// partitioned operators, the query service's worker pool, and the
/// --threads tool flags.
size_t ResolveThreadCount(size_t requested);

/// Runs `fn(part, begin, end)` for `parts` contiguous slices of [0, n)
/// (slice sizes differ by at most one row). With parts <= 1 (or n == 0)
/// the single call runs inline on the caller's thread; otherwise the
/// slices are claimed off a shared atomic cursor by a lazily-started
/// process-wide worker pool (hardware_concurrency - 1 threads, started on
/// first use) WITH the calling thread participating, and the call returns
/// only when every slice has finished — so `fn` may capture by reference,
/// and nested/concurrent calls cannot deadlock (the caller always makes
/// progress itself). Callers own determinism: give each slice a private
/// output and concatenate in slice order afterwards.
void ParallelSlices(size_t n, size_t parts,
                    const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace hippo
