#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hippo {

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

// One ParallelSlices call: slices are claimed via an atomic cursor by the
// submitting thread AND any free pool workers, so the caller always makes
// progress even when every worker is busy with other jobs (no deadlock
// under nested or concurrent calls). shared_ptr ownership keeps the job
// alive for stragglers that popped it just before exhaustion.
struct SliceJob {
  SliceJob(size_t n, size_t parts,
           const std::function<void(size_t, size_t, size_t)>& fn)
      : n(n), parts(parts), fn(fn) {}

  const size_t n;
  const size_t parts;
  const std::function<void(size_t, size_t, size_t)>& fn;
  std::atomic<size_t> next_slice{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;  // guarded by mu

  // Claims and runs slices until the cursor is exhausted.
  void Work() {
    for (;;) {
      size_t p = next_slice.fetch_add(1, std::memory_order_relaxed);
      if (p >= parts) return;
      fn(p, n * p / parts, n * (p + 1) / parts);
      std::lock_guard<std::mutex> lock(mu);
      ++completed;
      if (completed == parts) done_cv.notify_all();
    }
  }

  void WaitDone() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return completed == parts; });
  }
};

// Lazily-initialized shared pool of hardware_concurrency()-1 helper
// threads. The serving path calls ParallelSlices per operator per query;
// spawning transient std::threads there cost more than small slices do.
class SlicePool {
 public:
  static SlicePool& Instance() {
    static SlicePool pool;
    return pool;
  }

  void Run(const std::shared_ptr<SliceJob>& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      StartWorkersLocked();
      if (!workers_.empty()) queue_.push_back(job);
    }
    work_cv_.notify_all();
    job->Work();      // the caller is always one of the workers
    job->WaitDone();  // stragglers may still hold unfinished slices
  }

  ~SlicePool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

 private:
  void StartWorkersLocked() {
    if (started_) return;
    started_ = true;
    size_t hw = ResolveThreadCount(0);
    size_t helpers = hw > 1 ? hw - 1 : 0;
    workers_.reserve(helpers);
    for (size_t i = 0; i < helpers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::shared_ptr<SliceJob> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_) return;
        job = queue_.front();
        // Drop jobs whose slices are all claimed; keep one with work left
        // at the front so other workers can pick it up too.
        if (job->next_slice.load(std::memory_order_relaxed) >= job->parts) {
          queue_.pop_front();
          continue;
        }
      }
      job->Work();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<SliceJob>> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stop_ = false;
};

}  // namespace

void ParallelSlices(size_t n, size_t parts,
                    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (parts <= 1 || n <= 1) {
    fn(0, 0, n);
    return;
  }
  if (parts > n) parts = n;
  auto job = std::make_shared<SliceJob>(n, parts, fn);
  SlicePool::Instance().Run(job);
}

}  // namespace hippo
