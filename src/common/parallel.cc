#include "common/parallel.h"

#include <thread>
#include <vector>

namespace hippo {

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelSlices(size_t n, size_t parts,
                    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (parts <= 1 || n <= 1) {
    fn(0, 0, n);
    return;
  }
  if (parts > n) parts = n;
  std::vector<std::thread> threads;
  threads.reserve(parts);
  for (size_t p = 0; p < parts; ++p) {
    size_t begin = n * p / parts;
    size_t end = n * (p + 1) / parts;
    threads.emplace_back(fn, p, begin, end);
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace hippo
