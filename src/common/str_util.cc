#include "common/str_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hippo {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view t) {
  if (s.size() != t.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(t[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string SqlQuote(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

}  // namespace hippo
