// Hash combinators used by value hashing, hash joins and hypergraph indexes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace hippo {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hashes any std::hash-able value into the running seed.
template <typename T>
void HashCombineValue(size_t* seed, const T& v) {
  HashCombine(seed, std::hash<T>{}(v));
}

/// 64-bit finalizer (splitmix64) for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace hippo
