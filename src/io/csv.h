// CSV import/export (RFC 4180 dialect).
//
// Hippo's workflow starts from existing — possibly inconsistent — data:
// integrated sources, half-reconciled feeds, legacy dumps. CSV is the
// lingua franca of such data, so the library ships a strict reader/writer:
//
//   * quoted fields with doubled-quote escapes, embedded delimiters,
//     embedded newlines, and CRLF line endings;
//   * values are coerced to the target column types, with the offending
//     line and column reported on failure;
//   * a configurable NULL token (empty field by default);
//   * set semantics on import (duplicate rows collapse, like INSERT).
//
// SQL surface: `COPY tbl FROM 'file.csv'` / `COPY tbl TO 'file.csv'`.
#pragma once

#include <string>

#include "common/status.h"
#include "exec/executor.h"

namespace hippo {

class Database;

struct CsvOptions {
  char delimiter = ',';
  /// Import: skip the first record (it must match the column count).
  /// Export: emit a header of column names.
  bool header = true;
  /// The unquoted field spelling that maps to SQL NULL (and back).
  std::string null_token = "";
};

struct CsvImportStats {
  size_t rows_read = 0;      ///< data records parsed
  size_t rows_inserted = 0;  ///< new rows (set semantics dedupes the rest)
};

/// Parses `text` as CSV and inserts every record into `table`.
/// Values are coerced to the column types; errors identify the 1-based
/// line and column. Import is all-or-nothing per call only in the absence
/// of prior inserts — on error, rows before the failure remain inserted
/// (matching the behaviour of a failing multi-row INSERT script).
Result<CsvImportStats> ImportCsvText(Database* db, const std::string& table,
                                     const std::string& text,
                                     const CsvOptions& options = CsvOptions());

/// Reads `path` and imports it into `table` (see ImportCsvText).
Result<CsvImportStats> ImportCsvFile(Database* db, const std::string& table,
                                     const std::string& path,
                                     const CsvOptions& options = CsvOptions());

/// Renders a result set as CSV (quoting only where required).
std::string ToCsvText(const ResultSet& rs,
                      const CsvOptions& options = CsvOptions());

/// Writes a result set to `path` as CSV.
Status ExportCsvFile(const ResultSet& rs, const std::string& path,
                     const CsvOptions& options = CsvOptions());

}  // namespace hippo
