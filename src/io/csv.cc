#include "io/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/str_util.h"
#include "db/database.h"

namespace hippo {

namespace {

/// One parsed CSV record plus the line it started on (for error messages).
struct Record {
  std::vector<std::string> fields;
  std::vector<bool> quoted;  ///< quoted fields are never the NULL token
  size_t line = 0;
};

/// RFC 4180 state-machine parser. Returns records including the header.
Result<std::vector<Record>> ParseCsv(const std::string& text,
                                     char delimiter) {
  std::vector<Record> records;
  Record current;
  std::string field;
  bool in_quotes = false;
  bool field_quoted = false;
  bool record_started = false;
  size_t line = 1;
  size_t record_line = 1;

  auto end_field = [&] {
    current.fields.push_back(std::move(field));
    current.quoted.push_back(field_quoted);
    field.clear();
    field_quoted = false;
  };
  auto end_record = [&] {
    end_field();
    current.line = record_line;
    records.push_back(std::move(current));
    current = Record{};
    record_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      if (!field.empty()) {
        return Status::InvalidArgument(StrFormat(
            "CSV line %zu: quote character inside an unquoted field", line));
      }
      in_quotes = true;
      field_quoted = true;
      record_started = true;
      continue;
    }
    if (c == delimiter) {
      record_started = true;
      end_field();
      continue;
    }
    if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
      continue;  // CRLF: handled at the '\n'
    }
    if (c == '\n') {
      if (record_started || !field.empty() || !current.fields.empty()) {
        end_record();
      }
      ++line;
      record_line = line;
      continue;
    }
    record_started = true;
    field.push_back(c);
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        "CSV: unterminated quoted field at end of input");
  }
  if (record_started || !field.empty() || !current.fields.empty()) {
    end_record();
  }
  return records;
}

/// Coerces one CSV field to `type`; `quoted` fields never become NULL.
Result<Value> FieldToValue(const std::string& field, bool quoted, TypeId type,
                           const std::string& null_token, size_t csv_line,
                           size_t column) {
  if (!quoted && field == null_token) return Value::Null();
  auto fail = [&](const char* what) {
    return Status::InvalidArgument(
        StrFormat("CSV line %zu, column %zu: %s: '%s'", csv_line, column + 1,
                  what, field.c_str()));
  };
  switch (type) {
    case TypeId::kInt: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return fail("not an INTEGER");
      }
      return Value::Int(static_cast<int64_t>(v));
    }
    case TypeId::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return fail("not a DOUBLE");
      }
      return Value::Double(v);
    }
    case TypeId::kBool: {
      std::string lower = ToLower(field);
      if (lower == "true" || lower == "t" || lower == "1") {
        return Value::Bool(true);
      }
      if (lower == "false" || lower == "f" || lower == "0") {
        return Value::Bool(false);
      }
      return fail("not a BOOLEAN");
    }
    case TypeId::kString:
      return Value::String(field);
    case TypeId::kNull:
      break;
  }
  return fail("unsupported column type");
}

/// True when the value must be quoted on output.
bool NeedsQuoting(const std::string& s, char delimiter,
                  const std::string& null_token) {
  if (s == null_token) return true;  // distinguish "" (string) from NULL
  for (char c : s) {
    if (c == '"' || c == '\n' || c == '\r' || c == delimiter) return true;
  }
  return false;
}

void AppendField(std::string* out, const std::string& s, char delimiter,
                 const std::string& null_token) {
  if (!NeedsQuoting(s, delimiter, null_token)) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<CsvImportStats> ImportCsvText(Database* db, const std::string& table,
                                     const std::string& text,
                                     const CsvOptions& options) {
  HIPPO_ASSIGN_OR_RETURN(Table * t, db->catalog().GetTable(table));
  const Schema& schema = t->schema();
  HIPPO_ASSIGN_OR_RETURN(std::vector<Record> records,
                         ParseCsv(text, options.delimiter));
  CsvImportStats stats;
  size_t start = 0;
  if (options.header && !records.empty()) {
    if (records[0].fields.size() != schema.NumColumns()) {
      return Status::InvalidArgument(StrFormat(
          "CSV header has %zu fields; table %s has %zu columns",
          records[0].fields.size(), table.c_str(), schema.NumColumns()));
    }
    start = 1;
  }
  for (size_t r = start; r < records.size(); ++r) {
    const Record& rec = records[r];
    if (rec.fields.size() != schema.NumColumns()) {
      return Status::InvalidArgument(StrFormat(
          "CSV line %zu: expected %zu fields, got %zu", rec.line,
          schema.NumColumns(), rec.fields.size()));
    }
    Row row;
    row.reserve(rec.fields.size());
    for (size_t c = 0; c < rec.fields.size(); ++c) {
      HIPPO_ASSIGN_OR_RETURN(
          Value v, FieldToValue(rec.fields[c], rec.quoted[c],
                                schema.column(c).type, options.null_token,
                                rec.line, c));
      row.push_back(std::move(v));
    }
    ++stats.rows_read;
    size_t before = t->NumLiveRows();
    HIPPO_RETURN_NOT_OK(db->InsertRow(table, std::move(row)));
    if (t->NumLiveRows() > before) ++stats.rows_inserted;
  }
  return stats;
}

Result<CsvImportStats> ImportCsvFile(Database* db, const std::string& table,
                                     const std::string& path,
                                     const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ImportCsvText(db, table, buffer.str(), options);
}

std::string ToCsvText(const ResultSet& rs, const CsvOptions& options) {
  std::string out;
  if (options.header) {
    for (size_t i = 0; i < rs.schema.NumColumns(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      AppendField(&out, rs.schema.column(i).name, options.delimiter,
                  options.null_token);
    }
    out.push_back('\n');
  }
  for (const Row& row : rs.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      if (row[i].is_null()) {
        out.append(options.null_token);
      } else if (row[i].type() == TypeId::kString) {
        AppendField(&out, row[i].AsString(), options.delimiter,
                    options.null_token);
      } else {
        out.append(row[i].ToString());
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status ExportCsvFile(const ResultSet& rs, const std::string& path,
                     const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << ToCsvText(rs, options);
  if (!out.good()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace hippo
