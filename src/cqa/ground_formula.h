// Grounding: expressing "tuple t belongs to Q(repair)" as a propositional
// formula over base-relation facts.
//
// Because the supported query class contains no existential quantification
// (projections are permutations), the membership of t in every subexpression
// is decided by t itself (split across products). Recursion over the plan:
//
//   t ∈ R          ↦  literal over the fact R(t)  (FALSE if R(t) ∉ DB,
//                      since repairs only delete tuples)
//   t ∈ σθ(E)      ↦  θ(t) ∧ (t ∈ E)              (θ(t) is a constant)
//   t ∈ π(E)       ↦  t' ∈ E   where t' is the inverse image of t
//   t ∈ E1 × E2    ↦  (t1 ∈ E1) ∧ (t2 ∈ E2)
//   t ∈ E1 ∪ E2    ↦  (t ∈ E1) ∨ (t ∈ E2)
//   t ∈ E1 − E2    ↦  (t ∈ E1) ∧ ¬(t ∈ E2)
//   t ∈ E1 ∩ E2    ↦  (t ∈ E1) ∧ (t ∈ E2)
//
// The truth value of a literal in a repair is "the fact survived". The
// formula is later converted to CNF and each clause checked by the Prover.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "plan/logical_plan.h"
#include "storage/table.h"

namespace hippo::cqa {

/// \brief A ground propositional formula over database facts.
struct GroundFormula {
  enum class Kind : uint8_t { kConst, kLit, kNot, kAnd, kOr };

  Kind kind = Kind::kConst;
  bool const_value = false;          ///< for kConst
  RowId fact{};                      ///< for kLit (always an existing row)
  std::vector<GroundFormula> children;

  static GroundFormula True() { return Constant(true); }
  static GroundFormula False() { return Constant(false); }
  static GroundFormula Constant(bool v) {
    GroundFormula f;
    f.kind = Kind::kConst;
    f.const_value = v;
    return f;
  }
  static GroundFormula Lit(RowId fact) {
    GroundFormula f;
    f.kind = Kind::kLit;
    f.fact = fact;
    return f;
  }
  /// Constant-folding connectives.
  static GroundFormula Not(GroundFormula a);
  static GroundFormula And(GroundFormula a, GroundFormula b);
  static GroundFormula Or(GroundFormula a, GroundFormula b);

  bool IsConst() const { return kind == Kind::kConst; }

  /// Evaluates under a truth assignment for facts.
  bool Eval(const std::function<bool(RowId)>& truth) const;

  /// Collects the distinct facts mentioned.
  void CollectFacts(std::vector<RowId>* out) const;

  std::string ToString() const;
};

/// \brief Answers "does base table `table_id` contain this row, and at which
/// RowId?" during grounding.
///
/// The two implementations realize the paper's two modes: issuing membership
/// queries against the database engine (base system) vs. answering from
/// structures computed alongside the envelope (knowledge gathering).
class MembershipProvider {
 public:
  virtual ~MembershipProvider() = default;
  virtual Result<std::optional<RowId>> Lookup(uint32_t table_id,
                                              const Row& values) = 0;
  /// Number of membership requests served.
  virtual size_t NumLookups() const = 0;
};

/// \brief Grounds candidate tuples against a bound SJUD plan.
class Grounder {
 public:
  Grounder(const PlanNode& plan, MembershipProvider* membership)
      : plan_(plan), membership_(membership) {}

  /// Builds the ground formula for "tuple ∈ plan" (tuple has the plan's
  /// output schema). The formula is constant-folded on the fly.
  Result<GroundFormula> Ground(const Row& tuple);

 private:
  Result<GroundFormula> GroundNode(const PlanNode& node, const Row& tuple);

  const PlanNode& plan_;
  MembershipProvider* membership_;
};

}  // namespace hippo::cqa
