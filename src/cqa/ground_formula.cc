#include "cqa/ground_formula.h"

#include <unordered_set>

#include "expr/evaluator.h"
#include "plan/sjud.h"

namespace hippo::cqa {

GroundFormula GroundFormula::Not(GroundFormula a) {
  if (a.IsConst()) return Constant(!a.const_value);
  GroundFormula f;
  f.kind = Kind::kNot;
  f.children.push_back(std::move(a));
  return f;
}

GroundFormula GroundFormula::And(GroundFormula a, GroundFormula b) {
  if (a.IsConst()) return a.const_value ? std::move(b) : False();
  if (b.IsConst()) return b.const_value ? std::move(a) : False();
  GroundFormula f;
  f.kind = Kind::kAnd;
  f.children.push_back(std::move(a));
  f.children.push_back(std::move(b));
  return f;
}

GroundFormula GroundFormula::Or(GroundFormula a, GroundFormula b) {
  if (a.IsConst()) return a.const_value ? True() : std::move(b);
  if (b.IsConst()) return b.const_value ? True() : std::move(a);
  GroundFormula f;
  f.kind = Kind::kOr;
  f.children.push_back(std::move(a));
  f.children.push_back(std::move(b));
  return f;
}

bool GroundFormula::Eval(const std::function<bool(RowId)>& truth) const {
  switch (kind) {
    case Kind::kConst:
      return const_value;
    case Kind::kLit:
      return truth(fact);
    case Kind::kNot:
      return !children[0].Eval(truth);
    case Kind::kAnd:
      for (const GroundFormula& c : children) {
        if (!c.Eval(truth)) return false;
      }
      return true;
    case Kind::kOr:
      for (const GroundFormula& c : children) {
        if (c.Eval(truth)) return true;
      }
      return false;
  }
  return false;
}

void GroundFormula::CollectFacts(std::vector<RowId>* out) const {
  switch (kind) {
    case Kind::kConst:
      return;
    case Kind::kLit:
      out->push_back(fact);
      return;
    default:
      for (const GroundFormula& c : children) c.CollectFacts(out);
  }
}

std::string GroundFormula::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return const_value ? "TRUE" : "FALSE";
    case Kind::kLit:
      return fact.ToString();
    case Kind::kNot:
      return "!" + children[0].ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      const char* sep = kind == Kind::kAnd ? " & " : " | ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

Result<GroundFormula> Grounder::Ground(const Row& tuple) {
  const PlanNode* root = &plan_;
  if (root->kind() == PlanKind::kSort) root = &root->child(0);
  return GroundNode(*root, tuple);
}

Result<GroundFormula> Grounder::GroundNode(const PlanNode& node,
                                           const Row& tuple) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      HIPPO_ASSIGN_OR_RETURN(std::optional<RowId> rid,
                             membership_->Lookup(scan.table_id(), tuple));
      if (!rid.has_value()) return GroundFormula::False();
      return GroundFormula::Lit(*rid);
    }
    case PlanKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(node);
      if (!EvalPredicate(f.predicate(), tuple)) {
        return GroundFormula::False();
      }
      return GroundNode(node.child(0), tuple);
    }
    case PlanKind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(node);
      const size_t child_width = node.child(0).schema().NumColumns();
      Row inverse(child_width, Value::Null());
      std::vector<bool> assigned(child_width, false);
      for (size_t i = 0; i < p.NumExprs(); ++i) {
        HIPPO_CHECK_MSG(p.expr(i).kind() == ExprKind::kColumnRef,
                        "grounding requires a safe projection");
        size_t idx = static_cast<size_t>(
            static_cast<const ColumnRefExpr&>(p.expr(i)).index());
        if (assigned[idx]) {
          // Two output columns map to the same input; the tuple must agree.
          if (!(inverse[idx] == tuple[i])) return GroundFormula::False();
        } else {
          inverse[idx] = tuple[i];
          assigned[idx] = true;
        }
      }
      for (bool a : assigned) {
        HIPPO_CHECK_MSG(a, "grounding requires a safe projection");
      }
      return GroundNode(node.child(0), inverse);
    }
    case PlanKind::kProduct:
    case PlanKind::kJoin: {
      if (node.kind() == PlanKind::kJoin) {
        const auto& j = static_cast<const JoinNode&>(node);
        if (!EvalPredicate(j.condition(), tuple)) {
          return GroundFormula::False();
        }
      }
      const size_t left_width = node.child(0).schema().NumColumns();
      Row left(tuple.begin(), tuple.begin() + static_cast<long>(left_width));
      Row right(tuple.begin() + static_cast<long>(left_width), tuple.end());
      HIPPO_ASSIGN_OR_RETURN(GroundFormula lf,
                             GroundNode(node.child(0), left));
      // Short-circuit: FALSE left makes the product FALSE without probing
      // the right side.
      if (lf.IsConst() && !lf.const_value) return GroundFormula::False();
      HIPPO_ASSIGN_OR_RETURN(GroundFormula rf,
                             GroundNode(node.child(1), right));
      return GroundFormula::And(std::move(lf), std::move(rf));
    }
    case PlanKind::kUnion: {
      HIPPO_ASSIGN_OR_RETURN(GroundFormula lf,
                             GroundNode(node.child(0), tuple));
      if (lf.IsConst() && lf.const_value) return GroundFormula::True();
      HIPPO_ASSIGN_OR_RETURN(GroundFormula rf,
                             GroundNode(node.child(1), tuple));
      return GroundFormula::Or(std::move(lf), std::move(rf));
    }
    case PlanKind::kDifference: {
      HIPPO_ASSIGN_OR_RETURN(GroundFormula lf,
                             GroundNode(node.child(0), tuple));
      if (lf.IsConst() && !lf.const_value) return GroundFormula::False();
      HIPPO_ASSIGN_OR_RETURN(GroundFormula rf,
                             GroundNode(node.child(1), tuple));
      return GroundFormula::And(std::move(lf),
                                GroundFormula::Not(std::move(rf)));
    }
    case PlanKind::kIntersect: {
      HIPPO_ASSIGN_OR_RETURN(GroundFormula lf,
                             GroundNode(node.child(0), tuple));
      if (lf.IsConst() && !lf.const_value) return GroundFormula::False();
      HIPPO_ASSIGN_OR_RETURN(GroundFormula rf,
                             GroundNode(node.child(1), tuple));
      return GroundFormula::And(std::move(lf), std::move(rf));
    }
    case PlanKind::kSort:
    case PlanKind::kAntiJoin:
    case PlanKind::kAggregate:
      break;
  }
  return Status::Internal("unsupported plan node in grounding");
}

}  // namespace hippo::cqa
