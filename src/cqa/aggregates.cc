#include "cqa/aggregates.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/str_util.h"
#include "repairs/repair_enumerator.h"

namespace hippo::cqa {

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
  }
  return "?";
}

Result<AggFn> AggFnFromString(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "count") return AggFn::kCount;
  if (n == "sum") return AggFn::kSum;
  if (n == "min") return AggFn::kMin;
  if (n == "max") return AggFn::kMax;
  if (n == "avg") return AggFn::kAvg;
  return Status::InvalidArgument("unknown aggregate function: " + name);
}

namespace {

/// Aggregates a plain list of numeric values (SQL semantics; empty -> NULL
/// except COUNT -> 0).
Value Aggregate(AggFn fn, const std::vector<double>& values, bool as_double) {
  if (fn == AggFn::kCount) {
    return Value::Int(static_cast<int64_t>(values.size()));
  }
  if (values.empty()) return Value::Null();
  double acc = 0;
  switch (fn) {
    case AggFn::kSum:
      acc = 0;
      for (double v : values) acc += v;
      break;
    case AggFn::kMin:
      acc = *std::min_element(values.begin(), values.end());
      break;
    case AggFn::kMax:
      acc = *std::max_element(values.begin(), values.end());
      break;
    case AggFn::kAvg:
      acc = 0;
      for (double v : values) acc += v;
      acc /= static_cast<double>(values.size());
      return Value::Double(acc);
    case AggFn::kCount:
      return Value::Null();  // unreachable
  }
  if (as_double) return Value::Double(acc);
  return Value::Int(static_cast<int64_t>(acc));
}

struct CliqueAnalysis {
  bool applicable = false;
  // Vertices deleted in every repair (unary edges).
  std::unordered_set<uint32_t> always_deleted;
  // Disjoint cliques of pairwise-conflicting row indexes (size >= 2).
  std::vector<std::vector<uint32_t>> cliques;
  // Rows involved in some clique (the rest, minus always_deleted, are
  // conflict-free).
  std::unordered_set<uint32_t> in_clique;
};

/// Checks the clique-partition property for `table_id` and extracts the
/// cliques. Not applicable when an incident edge crosses tables or when a
/// connected component is not a clique.
CliqueAnalysis AnalyzeCliques(const ConflictHypergraph& graph,
                              uint32_t table_id) {
  CliqueAnalysis out;
  // Pass 1: unary deletions and applicability of every incident edge.
  std::unordered_map<uint32_t, std::unordered_set<uint32_t>> adj;
  for (size_t e = 0; e < graph.NumEdgeSlots(); ++e) {
    if (!graph.EdgeAlive(static_cast<ConflictHypergraph::EdgeId>(e))) continue;
    const std::vector<RowId>& edge =
        graph.edge(static_cast<ConflictHypergraph::EdgeId>(e));
    bool touches = false;
    bool inside = true;
    for (const RowId& v : edge) {
      if (v.table == table_id) {
        touches = true;
      } else {
        inside = false;
      }
    }
    if (!touches) continue;
    if (!inside) return out;  // cross-table conflict: bail to enumeration
    if (edge.size() == 1) {
      out.always_deleted.insert(edge[0].row);
    }
  }
  // Pass 2: adjacency over surviving edges (edges with an always-deleted
  // vertex can never be completed, so they impose nothing).
  for (size_t e = 0; e < graph.NumEdgeSlots(); ++e) {
    if (!graph.EdgeAlive(static_cast<ConflictHypergraph::EdgeId>(e))) continue;
    const std::vector<RowId>& edge =
        graph.edge(static_cast<ConflictHypergraph::EdgeId>(e));
    if (edge.empty() || edge[0].table != table_id) continue;
    bool vacuous = false;
    for (const RowId& v : edge) {
      if (out.always_deleted.count(v.row)) vacuous = true;
    }
    if (vacuous || edge.size() == 1) continue;
    if (edge.size() != 2) return out;  // k-ary conflicts: not a clique graph
    adj[edge[0].row].insert(edge[1].row);
    adj[edge[1].row].insert(edge[0].row);
  }
  // Pass 3: connected components must be cliques.
  std::unordered_set<uint32_t> visited;
  for (const auto& [v, _] : adj) {
    if (visited.count(v)) continue;
    std::vector<uint32_t> component;
    std::vector<uint32_t> stack = {v};
    visited.insert(v);
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      component.push_back(u);
      for (uint32_t w : adj[u]) {
        if (visited.insert(w).second) stack.push_back(w);
      }
    }
    for (uint32_t u : component) {
      if (adj[u].size() != component.size() - 1) {
        return out;  // not pairwise conflicting
      }
    }
    for (uint32_t u : component) out.in_clique.insert(u);
    out.cliques.push_back(std::move(component));
  }
  out.applicable = true;
  return out;
}

/// The [glb, lub] interval in closed form, given the conflict-free
/// ("fixed") values, and each clique's min/max of the aggregated column.
/// `fixed_count` is the number of conflict-free rows (fixed is empty for
/// COUNT, which does not read the column).
AggRange ClosedFormRange(AggFn fn, const std::vector<double>& fixed,
                         size_t fixed_count,
                         const std::vector<double>& clique_min,
                         const std::vector<double>& clique_max,
                         bool as_double) {
  size_t n_repair_rows = fixed_count + clique_min.size();
  if (fn == AggFn::kCount) {
    // Every repair keeps exactly one tuple per clique: COUNT is certain.
    Value v = Value::Int(static_cast<int64_t>(n_repair_rows));
    return AggRange{v, v};
  }
  if (n_repair_rows == 0) {
    return AggRange{Value::Null(), Value::Null()};
  }

  auto pack = [as_double](double v) {
    return as_double ? Value::Double(v) : Value::Int(static_cast<int64_t>(v));
  };
  double fixed_sum = 0;
  for (double v : fixed) fixed_sum += v;

  switch (fn) {
    case AggFn::kSum: {
      double glb = fixed_sum, lub = fixed_sum;
      for (double v : clique_min) glb += v;
      for (double v : clique_max) lub += v;
      return AggRange{pack(glb), pack(lub)};
    }
    case AggFn::kAvg: {
      double glb = fixed_sum, lub = fixed_sum;
      for (double v : clique_min) glb += v;
      for (double v : clique_max) lub += v;
      double n = static_cast<double>(n_repair_rows);
      return AggRange{Value::Double(glb / n), Value::Double(lub / n)};
    }
    case AggFn::kMin: {
      // glb: smallest value any repair can contain = global min.
      double glb = fixed.empty() ? clique_min[0]
                                 : *std::min_element(fixed.begin(),
                                                     fixed.end());
      for (double v : clique_min) glb = std::min(glb, v);
      // lub: maximize the minimum — pick each clique's max.
      double lub = fixed.empty()
                       ? clique_max[0]
                       : *std::min_element(fixed.begin(), fixed.end());
      for (double v : clique_max) lub = std::min(lub, v);
      if (fixed.empty()) {
        lub = *std::min_element(clique_max.begin(), clique_max.end());
      }
      return AggRange{pack(glb), pack(lub)};
    }
    case AggFn::kMax: {
      double lub = fixed.empty() ? clique_max[0]
                                 : *std::max_element(fixed.begin(),
                                                     fixed.end());
      for (double v : clique_max) lub = std::max(lub, v);
      // glb: minimize the maximum — pick each clique's min.
      double glb = fixed.empty()
                       ? clique_min[0]
                       : *std::max_element(fixed.begin(), fixed.end());
      for (double v : clique_min) glb = std::max(glb, v);
      if (fixed.empty()) {
        glb = clique_min[0];
        for (double v : clique_min) glb = std::max(glb, v);
      }
      return AggRange{pack(glb), pack(lub)};
    }
    case AggFn::kCount:
      break;  // handled above
  }
  return AggRange{Value::Null(), Value::Null()};
}

}  // namespace

Result<AggRange> RangeAggregator::RangeByEnumeration(
    const Table& table, AggFn fn, size_t column, size_t repair_limit) const {
  RepairEnumerator repairs(catalog_, graph_);
  HIPPO_ASSIGN_OR_RETURN(std::vector<RowMask> masks,
                         repairs.EnumerateMasks(repair_limit));
  bool as_double = fn == AggFn::kAvg ||
                   table.schema().column(column).type == TypeId::kDouble;
  AggRange range;
  bool first = true;
  for (const RowMask& mask : masks) {
    std::vector<double> values;
    values.reserve(table.NumRows());
    for (uint32_t i = 0; i < table.NumRows(); ++i) {
      if (!table.IsLive(i)) continue;
      if (!mask.Allows(RowId{table.id(), i})) continue;
      values.push_back(fn == AggFn::kCount
                           ? 0.0
                           : table.row(i)[column].NumericAsDouble());
    }
    Value v = Aggregate(fn, values, as_double);
    if (first) {
      range.glb = v;
      range.lub = v;
      first = false;
      continue;
    }
    if (v.Compare(range.glb) < 0) range.glb = v;
    if (v.Compare(range.lub) > 0) range.lub = v;
  }
  return range;
}

Result<size_t> RangeAggregator::CheckAggColumn(
    const Table& table, AggFn fn, const std::string& column) const {
  if (fn == AggFn::kCount) return size_t{0};  // COUNT(*) reads no column
  HIPPO_ASSIGN_OR_RETURN(size_t col,
                         table.schema().ResolveColumn("", column));
  TypeId t = table.schema().column(col).type;
  if (t != TypeId::kInt && t != TypeId::kDouble) {
    return Status::TypeError(
        StrFormat("%s requires a numeric column; %s.%s is %s",
                  AggFnToString(fn), table.name().c_str(), column.c_str(),
                  TypeIdToString(t)));
  }
  for (uint32_t i = 0; i < table.NumRows(); ++i) {
    if (!table.IsLive(i)) continue;
    if (table.row(i)[col].is_null()) {
      return Status::NotSupported(
          "NULLs in the aggregated column are not supported for "
          "range-consistent aggregation");
    }
  }
  return col;
}

Result<AggRange> RangeAggregator::Range(const std::string& table_name,
                                        AggFn fn, const std::string& column,
                                        AggStats* stats,
                                        size_t repair_limit) const {
  HIPPO_ASSIGN_OR_RETURN(const Table* table, catalog_.GetTable(table_name));
  HIPPO_ASSIGN_OR_RETURN(size_t col, CheckAggColumn(*table, fn, column));

  CliqueAnalysis cliques = AnalyzeCliques(graph_, table->id());
  if (!cliques.applicable) {
    if (stats != nullptr) stats->used_clique_partition = false;
    return RangeByEnumeration(*table, fn, col, repair_limit);
  }
  if (stats != nullptr) {
    stats->used_clique_partition = true;
    stats->cliques = cliques.cliques.size();
  }

  bool as_double = fn == AggFn::kAvg ||
                   (fn != AggFn::kCount &&
                    table->schema().column(col).type == TypeId::kDouble);

  // Fixed part: conflict-free rows (not always-deleted, not in a clique).
  std::vector<double> fixed;
  size_t fixed_count = 0;
  for (uint32_t i = 0; i < table->NumRows(); ++i) {
    if (!table->IsLive(i)) continue;
    if (cliques.always_deleted.count(i) || cliques.in_clique.count(i)) {
      continue;
    }
    ++fixed_count;
    if (fn != AggFn::kCount) {
      fixed.push_back(table->row(i)[col].NumericAsDouble());
    }
  }
  if (stats != nullptr) stats->conflict_free = fixed_count;

  // Per-clique min/max of the aggregated column.
  std::vector<double> clique_min, clique_max;
  for (const std::vector<uint32_t>& clique : cliques.cliques) {
    double lo = 0, hi = 0;
    if (fn != AggFn::kCount) {
      lo = hi = table->row(clique[0])[col].NumericAsDouble();
      for (uint32_t r : clique) {
        double v = table->row(r)[col].NumericAsDouble();
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    clique_min.push_back(lo);
    clique_max.push_back(hi);
  }

  return ClosedFormRange(fn, fixed, fixed_count, clique_min, clique_max,
                         as_double);
}

std::string GroupRange::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < group.size(); ++i) {
    if (i > 0) out += ", ";
    out += group[i].ToString();
  }
  out += ") -> " + range.ToString();
  if (!certain) out += " [group uncertain]";
  return out;
}

Result<std::vector<GroupRange>> RangeAggregator::GroupedByEnumeration(
    const Table& table, AggFn fn, size_t column,
    const std::vector<size_t>& group_cols, size_t repair_limit) const {
  RepairEnumerator repairs(catalog_, graph_);
  HIPPO_ASSIGN_OR_RETURN(std::vector<RowMask> masks,
                         repairs.EnumerateMasks(repair_limit));
  bool as_double = fn == AggFn::kAvg ||
                   (fn != AggFn::kCount &&
                    table.schema().column(column).type == TypeId::kDouble);

  struct State {
    AggRange range;
    size_t appearances = 0;
  };
  std::map<Row, State, bool (*)(const Row&, const Row&)> groups(&RowLess);
  for (const RowMask& mask : masks) {
    // Per-repair aggregation.
    std::map<Row, std::vector<double>, bool (*)(const Row&, const Row&)>
        per_group(&RowLess);
    for (uint32_t i = 0; i < table.NumRows(); ++i) {
      if (!table.IsLive(i)) continue;
      if (!mask.Allows(RowId{table.id(), i})) continue;
      Row key;
      key.reserve(group_cols.size());
      for (size_t c : group_cols) key.push_back(table.row(i)[c]);
      per_group[std::move(key)].push_back(
          fn == AggFn::kCount ? 0.0
                              : table.row(i)[column].NumericAsDouble());
    }
    for (auto& [key, values] : per_group) {
      Value v = Aggregate(fn, values, as_double);
      auto it = groups.find(key);
      if (it == groups.end()) {
        groups.emplace(key, State{AggRange{v, v}, 1});
        continue;
      }
      if (v.Compare(it->second.range.glb) < 0) it->second.range.glb = v;
      if (v.Compare(it->second.range.lub) > 0) it->second.range.lub = v;
      ++it->second.appearances;
    }
  }
  std::vector<GroupRange> out;
  out.reserve(groups.size());
  for (auto& [key, state] : groups) {
    out.push_back(
        GroupRange{key, state.range, state.appearances == masks.size()});
  }
  return out;
}

Result<std::vector<GroupRange>> RangeAggregator::GroupedRange(
    const std::string& table_name, AggFn fn, const std::string& column,
    const std::vector<std::string>& group_columns, AggStats* stats,
    size_t repair_limit) const {
  HIPPO_ASSIGN_OR_RETURN(const Table* table, catalog_.GetTable(table_name));
  HIPPO_ASSIGN_OR_RETURN(size_t col, CheckAggColumn(*table, fn, column));
  if (group_columns.empty()) {
    return Status::InvalidArgument(
        "GroupedRange requires at least one grouping column; use Range for "
        "the scalar form");
  }
  std::vector<size_t> group_cols;
  for (const std::string& g : group_columns) {
    HIPPO_ASSIGN_OR_RETURN(size_t idx, table->schema().ResolveColumn("", g));
    group_cols.push_back(idx);
  }

  auto key_of = [&](uint32_t row) {
    Row key;
    key.reserve(group_cols.size());
    for (size_t c : group_cols) key.push_back(table->row(row)[c]);
    return key;
  };

  // Closed form requires the clique partition AND cliques confined to one
  // group each (tuples of a clique agree on the grouping columns —
  // guaranteed when grouping by a subset of the FD determinant).
  CliqueAnalysis cliques = AnalyzeCliques(graph_, table->id());
  bool closed_form = cliques.applicable;
  if (closed_form) {
    for (const std::vector<uint32_t>& clique : cliques.cliques) {
      Row first = key_of(clique[0]);
      for (uint32_t r : clique) {
        if (!(RowEq()(key_of(r), first))) {
          closed_form = false;  // clique straddles groups
          break;
        }
      }
      if (!closed_form) break;
    }
  }
  if (!closed_form) {
    if (stats != nullptr) stats->used_clique_partition = false;
    return GroupedByEnumeration(*table, fn, col, group_cols, repair_limit);
  }
  if (stats != nullptr) {
    stats->used_clique_partition = true;
    stats->cliques = cliques.cliques.size();
  }

  bool as_double = fn == AggFn::kAvg ||
                   (fn != AggFn::kCount &&
                    table->schema().column(col).type == TypeId::kDouble);

  struct GroupData {
    std::vector<double> fixed;
    size_t fixed_count = 0;
    std::vector<double> clique_min, clique_max;
  };
  std::map<Row, GroupData, bool (*)(const Row&, const Row&)> groups(&RowLess);

  for (uint32_t i = 0; i < table->NumRows(); ++i) {
    if (!table->IsLive(i)) continue;
    if (cliques.always_deleted.count(i) || cliques.in_clique.count(i)) {
      continue;
    }
    GroupData& g = groups[key_of(i)];
    ++g.fixed_count;
    if (fn != AggFn::kCount) {
      g.fixed.push_back(table->row(i)[col].NumericAsDouble());
    }
  }
  for (const std::vector<uint32_t>& clique : cliques.cliques) {
    double lo = 0, hi = 0;
    if (fn != AggFn::kCount) {
      lo = hi = table->row(clique[0])[col].NumericAsDouble();
      for (uint32_t r : clique) {
        double v = table->row(r)[col].NumericAsDouble();
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    GroupData& g = groups[key_of(clique[0])];
    g.clique_min.push_back(lo);
    g.clique_max.push_back(hi);
  }

  std::vector<GroupRange> out;
  out.reserve(groups.size());
  for (auto& [key, g] : groups) {
    // Closed form: every group here holds a fixed row or a whole clique,
    // so it exists (non-empty) in every repair.
    out.push_back(GroupRange{
        key,
        ClosedFormRange(fn, g.fixed, g.fixed_count, g.clique_min,
                        g.clique_max, as_double),
        /*certain=*/true});
  }
  return out;
}

}  // namespace hippo::cqa
