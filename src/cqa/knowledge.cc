#include "cqa/knowledge.h"

#include "exec/executor.h"
#include "expr/evaluator.h"

namespace hippo::cqa {

Result<std::optional<RowId>> QueryMembershipProvider::Lookup(
    uint32_t table_id, const Row& values) {
  ++lookups_;
  const Table& table = catalog_.table(table_id);
  if (values.size() != table.schema().NumColumns()) {
    return Status::Internal("membership probe arity mismatch");
  }
  // Build σ_{c1=v1 ∧ ...}(R) with a rowid-emitting scan and execute it —
  // a genuine query through the engine, as the base system would issue.
  PlanNodePtr scan = ScanNode::Make(table.id(), table.name(), table.name(),
                                    table.schema(), /*emit_rowid=*/true);
  std::vector<ExprPtr> conjuncts;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) {
      conjuncts.push_back(std::make_unique<IsNullExpr>(
          ColumnRefExpr::Bound(i, table.schema().column(i).type), false));
      conjuncts.back()->set_result_type(TypeId::kBool);
      continue;
    }
    conjuncts.push_back(std::make_unique<ComparisonExpr>(
        CompareOp::kEq,
        ColumnRefExpr::Bound(i, table.schema().column(i).type),
        std::make_unique<LiteralExpr>(values[i])));
    conjuncts.back()->set_result_type(TypeId::kBool);
  }
  PlanNodePtr probe = std::make_unique<FilterNode>(
      std::move(scan), AndAll(std::move(conjuncts)));
  ExecContext ctx{&catalog_, nullptr};
  HIPPO_ASSIGN_OR_RETURN(ResultSet rs, Execute(*probe, ctx));
  // NULL values: the IS NULL filter above matches them, but a row whose
  // non-null values match under `=` with nulls elsewhere must compare
  // structurally; re-verify to keep set identity exact.
  for (const Row& row : rs.rows) {
    Row stored(row.begin(), row.end() - 1);
    if (stored == values) {
      return std::optional<RowId>(RowId{
          table_id, static_cast<uint32_t>(row.back().AsInt())});
    }
  }
  return std::optional<RowId>(std::nullopt);
}

Result<std::optional<RowId>> IndexMembershipProvider::Lookup(
    uint32_t table_id, const Row& values) {
  ++lookups_;
  indexed_.insert(table_id);  // tables' own hash index serves as the gather
  const Table& table = catalog_.table(table_id);
  if (values.size() != table.schema().NumColumns()) {
    return Status::Internal("membership probe arity mismatch");
  }
  return std::optional<RowId>(table.Find(values));
}

bool AllFactsConflictFree(const GroundFormula& formula,
                          const ConflictHypergraph& graph) {
  switch (formula.kind) {
    case GroundFormula::Kind::kConst:
      return true;
    case GroundFormula::Kind::kLit:
      return !graph.IsConflicting(formula.fact);
    default:
      for (const GroundFormula& c : formula.children) {
        if (!AllFactsConflictFree(c, graph)) return false;
      }
      return true;
  }
}

}  // namespace hippo::cqa
