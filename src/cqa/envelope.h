// Enveloping (the first step of Hippo's query pipeline).
//
// The envelope of a query Q is a query env(Q) whose answer set over the
// *current* (inconsistent) database is a superset of Q's answers over every
// repair — hence a superset of the consistent answers. Since repairs are
// subsets of the instance and all operators except difference are monotone,
// env is the homomorphic rewrite that drops subtrahends:
//
//     env(E1 − E2)   = env(E1)
//     env(op(E...))  = op(env(E)...)        for all other operators
//
// The envelope is evaluated once by the relational engine; its result rows
// are the Candidates handed to the Prover.
#pragma once

#include "plan/logical_plan.h"

namespace hippo::cqa {

/// Builds the envelope plan of a bound SJUD plan (a SortNode root, if
/// present, is dropped — ordering does not affect membership).
PlanNodePtr BuildEnvelope(const PlanNode& plan);

}  // namespace hippo::cqa
