// Membership providers: how grounding answers "is R(t) in the database?".
//
// The base system issues a membership query against the relational engine
// for every check — the costly path the paper describes ("this is done by
// simply executing the appropriate membership queries on the database").
// The knowledge-gathering (KG) optimization instead builds, alongside the
// envelope evaluation, an in-memory index per relation touched by the
// query, so membership checks execute without any queries on the database.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "catalog/catalog.h"
#include "cqa/ground_formula.h"
#include "hypergraph/hypergraph.h"

namespace hippo::cqa {

/// Base mode: each lookup plans and executes a selection query
/// (σ_{cols = values} R) against the engine, like a frontend issuing SQL
/// membership probes at the RDBMS.
class QueryMembershipProvider final : public MembershipProvider {
 public:
  explicit QueryMembershipProvider(const Catalog& catalog)
      : catalog_(catalog) {}

  Result<std::optional<RowId>> Lookup(uint32_t table_id,
                                      const Row& values) override;
  size_t NumLookups() const override { return lookups_; }

 private:
  const Catalog& catalog_;
  size_t lookups_ = 0;
};

/// Knowledge-gathering mode: one pass per touched relation builds a hash
/// index value→row; lookups are O(1) and issue no queries.
class IndexMembershipProvider final : public MembershipProvider {
 public:
  explicit IndexMembershipProvider(const Catalog& catalog)
      : catalog_(catalog) {}

  Result<std::optional<RowId>> Lookup(uint32_t table_id,
                                      const Row& values) override;
  size_t NumLookups() const override { return lookups_; }

  /// Number of per-relation gathering passes performed.
  size_t NumIndexedTables() const { return indexed_.size(); }

 private:
  const Catalog& catalog_;
  std::unordered_set<uint32_t> indexed_;
  size_t lookups_ = 0;
};

/// True iff every fact of the formula is conflict-free; such a formula has
/// the same value in every repair (its truth over the current instance),
/// so the Prover can be bypassed — the filtering optimization.
bool AllFactsConflictFree(const GroundFormula& formula,
                          const ConflictHypergraph& graph);

}  // namespace hippo::cqa
