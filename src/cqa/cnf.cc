#include "cqa/cnf.h"

#include <algorithm>
#include <map>
#include <set>

namespace hippo::cqa {

std::string Clause::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < literals.size(); ++i) {
    if (i > 0) out += " | ";
    if (!literals[i].positive) out += "!";
    out += literals[i].fact.ToString();
  }
  out += ")";
  return out;
}

namespace {

// Internal clause form during conversion: fact -> sign. A clause becomes a
// tautology when a fact occurs with both signs.
using MapClause = std::map<RowId, bool>;

/// NNF + distribution. `negated` pushes negation down (De Morgan).
/// Returns the clause set of the (possibly negated) subformula.
std::vector<MapClause> Convert(const GroundFormula& f, bool negated);

std::vector<MapClause> DistributeOr(const std::vector<MapClause>& a,
                                    const std::vector<MapClause>& b) {
  std::vector<MapClause> out;
  out.reserve(a.size() * b.size());
  for (const MapClause& ca : a) {
    for (const MapClause& cb : b) {
      MapClause merged = ca;
      bool tautology = false;
      for (const auto& [fact, sign] : cb) {
        auto it = merged.find(fact);
        if (it != merged.end() && it->second != sign) {
          tautology = true;
          break;
        }
        merged.emplace(fact, sign);
      }
      if (!tautology) out.push_back(std::move(merged));
    }
  }
  return out;
}

std::vector<MapClause> Convert(const GroundFormula& f, bool negated) {
  switch (f.kind) {
    case GroundFormula::Kind::kConst: {
      bool v = negated ? !f.const_value : f.const_value;
      if (v) return {};                    // TRUE: empty clause set
      return {MapClause{}};                // FALSE: one empty clause
    }
    case GroundFormula::Kind::kLit: {
      MapClause c;
      c.emplace(f.fact, !negated);
      return {std::move(c)};
    }
    case GroundFormula::Kind::kNot:
      return Convert(f.children[0], !negated);
    case GroundFormula::Kind::kAnd:
    case GroundFormula::Kind::kOr: {
      bool is_and =
          (f.kind == GroundFormula::Kind::kAnd) != negated;  // De Morgan
      if (is_and) {
        std::vector<MapClause> out;
        for (const GroundFormula& c : f.children) {
          std::vector<MapClause> sub = Convert(c, negated);
          out.insert(out.end(), std::make_move_iterator(sub.begin()),
                     std::make_move_iterator(sub.end()));
        }
        return out;
      }
      // OR: distribute.
      std::vector<MapClause> acc = {MapClause{}};
      for (const GroundFormula& c : f.children) {
        acc = DistributeOr(acc, Convert(c, negated));
        if (acc.empty()) return acc;  // a TRUE disjunct absorbs everything
      }
      return acc;
    }
  }
  return {};
}

}  // namespace

CnfResult ToCnf(const GroundFormula& formula) {
  CnfResult result;
  if (formula.IsConst()) {
    result.is_constant = true;
    result.constant_value = formula.const_value;
    return result;
  }
  std::vector<MapClause> raw = Convert(formula, /*negated=*/false);
  if (raw.empty()) {
    // All clauses were tautologies: true in every repair.
    result.is_constant = true;
    result.constant_value = true;
    return result;
  }
  // Dedup clauses (and detect an empty clause = constant FALSE).
  std::set<std::vector<std::pair<RowId, bool>>> seen;
  for (MapClause& mc : raw) {
    if (mc.empty()) {
      result.is_constant = true;
      result.constant_value = false;
      result.clauses.clear();
      return result;
    }
    std::vector<std::pair<RowId, bool>> key(mc.begin(), mc.end());
    if (!seen.insert(key).second) continue;
    Clause clause;
    clause.literals.reserve(mc.size());
    for (const auto& [fact, sign] : mc) {
      clause.literals.push_back(Literal{fact, sign});
    }
    result.clauses.push_back(std::move(clause));
  }
  return result;
}

}  // namespace hippo::cqa
