// HProver: deciding, from the conflict hypergraph alone, whether some repair
// falsifies a ground clause.
//
// Clause D = t1 ∨ ... ∨ tp ∨ ¬s1 ∨ ... ∨ ¬sq over facts of the instance
// (grounding never emits literals for absent facts). A repair R falsifies D
// iff every ti ∉ R and every sj ∈ R. Since repairs are *maximal* independent
// sets:
//
//   * all sj must be simultaneously consistent: {s̄} contains no hyperedge;
//   * each ti must be *excluded for a reason*: some hyperedge ei ∋ ti must
//     be completed by the rest of the repair, i.e. ei ∖ {ti} ⊆ R.
//
// Theorem (Chomicki–Marcinkowski): D is falsifiable iff one can choose for
// each ti an incident edge ei with (ei ∖ {ti}) ∩ {t̄} = ∅ such that
// B = {s̄} ∪ ⋃(ei ∖ {ti}) is independent. Any such B extends to a maximal
// independent set that contains every sj and blocks every ti. The search
// below backtracks over the edge choices — exponential only in the clause
// length (query size), polynomial in the data.
//
// Immediate non-falsifiability cases:
//   * some ti is conflict-free (it lies in every repair, so D holds);
//   * {s̄} already contains a full edge (no repair contains all sj);
//   * p = 0 and {s̄} independent: falsifiable iff q > 0 (extend {s̄} to a
//     repair), handled by the same machinery with no choices to make.
#pragma once

#include "cqa/cnf.h"
#include "hypergraph/hypergraph.h"

namespace hippo::cqa {

struct ProverStats {
  size_t clauses_checked = 0;
  size_t falsifiable_clauses = 0;
  size_t edge_choices_tried = 0;
  size_t independence_checks = 0;
};

class HProver {
 public:
  explicit HProver(const ConflictHypergraph& graph) : graph_(graph) {}

  /// True iff some repair makes every literal of the clause false.
  bool IsFalsifiable(const Clause& clause);

  /// True iff the clause holds in every repair.
  bool HoldsInAllRepairs(const Clause& clause) {
    return !IsFalsifiable(clause);
  }

  const ProverStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ProverStats(); }

  /// Ablation knob (bench_a1): when false, positives are searched in clause
  /// order instead of fewest-incident-edges-first.
  void set_order_positives_by_degree(bool v) {
    order_positives_by_degree_ = v;
  }

 private:
  bool Search(const std::vector<RowId>& positives, size_t next,
              VertexSet* blockers);

  /// Adds `v` to the blocker set unless it completes a hyperedge; returns
  /// whether the addition kept the set independent (false = rejected, set
  /// unchanged).
  bool TryAdd(RowId v, VertexSet* blockers);

  const ConflictHypergraph& graph_;
  ProverStats stats_;
  bool order_positives_by_degree_ = true;
};

}  // namespace hippo::cqa
