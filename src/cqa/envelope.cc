#include "cqa/envelope.h"

#include "common/macros.h"

namespace hippo::cqa {

PlanNodePtr BuildEnvelope(const PlanNode& plan) {
  switch (plan.kind()) {
    case PlanKind::kSort:
      return BuildEnvelope(plan.child(0));
    case PlanKind::kDifference:
      // Candidates for E1 − E2 are candidates for E1: a tuple absent from
      // env(E1) is in E1 of no repair, hence in E1 − E2 of no repair.
      return BuildEnvelope(plan.child(0));
    case PlanKind::kScan:
      return plan.Clone();
    case PlanKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(plan);
      return std::make_unique<FilterNode>(BuildEnvelope(plan.child(0)),
                                          f.predicate().Clone());
    }
    case PlanKind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(plan);
      std::vector<ExprPtr> exprs;
      for (size_t i = 0; i < p.NumExprs(); ++i) {
        exprs.push_back(p.expr(i).Clone());
      }
      return std::make_unique<ProjectNode>(BuildEnvelope(plan.child(0)),
                                           std::move(exprs), p.schema());
    }
    case PlanKind::kProduct:
      return std::make_unique<ProductNode>(BuildEnvelope(plan.child(0)),
                                           BuildEnvelope(plan.child(1)));
    case PlanKind::kJoin: {
      const auto& j = static_cast<const JoinNode&>(plan);
      return std::make_unique<JoinNode>(BuildEnvelope(plan.child(0)),
                                        BuildEnvelope(plan.child(1)),
                                        j.condition().Clone());
    }
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
      return std::make_unique<SetOpNode>(plan.kind(),
                                         BuildEnvelope(plan.child(0)),
                                         BuildEnvelope(plan.child(1)));
    case PlanKind::kAntiJoin:
    case PlanKind::kAggregate:
      break;
  }
  HIPPO_CHECK_MSG(false, "unsupported node in envelope construction");
  return nullptr;
}

}  // namespace hippo::cqa
