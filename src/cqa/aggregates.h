// Range-consistent answers to scalar aggregation queries.
//
// Aggregates have no single consistent answer over an inconsistent database
// (different repairs aggregate to different values); following Arenas,
// Bertossi, Chomicki, He, Raghavan, Spinrad — "Scalar Aggregation in
// Inconsistent Databases" (TCS 296(3), 2003; the Hippo demo's reference
// [3]) — the right notion is the RANGE: the greatest lower bound and least
// upper bound of the aggregate value across all repairs.
//
// Tractable case implemented in closed form: when the conflicts touching
// the aggregated relation partition into disjoint cliques of pairwise
// conflicting tuples (always true for a single FD: tuples sharing a key are
// pairwise in conflict). Every repair then keeps exactly one tuple per
// clique plus every conflict-free tuple, giving:
//
//   SUM   glb = fixed + Σ_clique min     lub = fixed + Σ_clique max
//   COUNT glb = lub = #conflict-free + #cliques
//   MIN   glb = min over all tuples      lub = min(fixed-min, min_clique max)
//   MAX   lub = max over all tuples      glb = max(fixed-max, max_clique min)
//   AVG   = SUM range / COUNT            (COUNT is constant)
//
// For hypergraphs without the clique-partition property (general denial
// constraints) the computation falls back to exact repair enumeration
// (exponential, bounded) — mirroring the paper family's hardness results
// for multiple constraints.
#pragma once

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "hypergraph/hypergraph.h"

namespace hippo::cqa {

enum class AggFn : uint8_t { kCount, kSum, kMin, kMax, kAvg };

const char* AggFnToString(AggFn fn);
Result<AggFn> AggFnFromString(const std::string& name);

/// The [glb, lub] interval of an aggregate across all repairs.
struct AggRange {
  Value glb;
  Value lub;

  std::string ToString() const {
    return "[" + glb.ToString() + ", " + lub.ToString() + "]";
  }
};

struct AggStats {
  bool used_clique_partition = false;  ///< closed form vs enumeration
  size_t cliques = 0;
  size_t conflict_free = 0;
};

/// One group of a grouped range-consistent aggregate.
struct GroupRange {
  Row group;      ///< values of the grouping columns
  AggRange range; ///< [glb, lub] over the repairs containing the group
  /// True when the group exists in EVERY repair. Groups existing in no
  /// repair are omitted.
  bool certain = true;

  std::string ToString() const;
};

class RangeAggregator {
 public:
  RangeAggregator(const Catalog& catalog, const ConflictHypergraph& graph)
      : catalog_(catalog), graph_(graph) {}

  /// Range of `fn` over column `column` of `table` across all repairs.
  /// COUNT ignores the column (COUNT(*)). NULLs in the aggregated column
  /// are NotSupported (they would make SQL aggregate semantics diverge
  /// from the repair semantics). `repair_limit` bounds the enumeration
  /// fallback.
  Result<AggRange> Range(const std::string& table, AggFn fn,
                         const std::string& column, AggStats* stats = nullptr,
                         size_t repair_limit = 100000) const;

  /// Grouped variant (extension): the [glb, lub] interval of `fn` per value
  /// of `group_columns`, ordered by group key. Closed form when the
  /// clique-partition property holds AND no clique straddles two groups
  /// (guaranteed when the grouping columns are a subset of the FD
  /// determinant); exact enumeration otherwise. A group absent from some
  /// repairs is flagged `certain = false`.
  Result<std::vector<GroupRange>> GroupedRange(
      const std::string& table, AggFn fn, const std::string& column,
      const std::vector<std::string>& group_columns,
      AggStats* stats = nullptr, size_t repair_limit = 100000) const;

 private:
  Result<AggRange> RangeByEnumeration(const Table& table, AggFn fn,
                                      size_t column, size_t repair_limit)
      const;

  Result<std::vector<GroupRange>> GroupedByEnumeration(
      const Table& table, AggFn fn, size_t column,
      const std::vector<size_t>& group_cols, size_t repair_limit) const;

  /// Resolves and validates the aggregated column (numeric, NULL-free).
  Result<size_t> CheckAggColumn(const Table& table, AggFn fn,
                                const std::string& column) const;

  const Catalog& catalog_;
  const ConflictHypergraph& graph_;
};

}  // namespace hippo::cqa
