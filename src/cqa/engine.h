// HippoEngine: the end-to-end pipeline of the paper's Figure 1.
//
//   Query ─► Enveloping ─► Evaluation ─► Candidates ─► Prover ─► Answer Set
//                              ▲                          ▲
//                             DB ◄── Conflict Detection ──┘ (hypergraph)
//
// Given a bound SJUD plan and the conflict hypergraph, the engine evaluates
// the envelope to obtain candidates, grounds each candidate into a formula
// over base facts, converts to CNF and lets the HProver decide, clause by
// clause, whether any repair falsifies it. Candidates surviving all clauses
// form the consistent answer set.
#pragma once

#include <chrono>
#include <optional>

#include "catalog/catalog.h"
#include "cqa/cnf.h"
#include "detect/detector.h"
#include "cqa/ground_formula.h"
#include "cqa/knowledge.h"
#include "cqa/prover.h"
#include "exec/executor.h"
#include "hypergraph/hypergraph.h"
#include "plan/logical_plan.h"

namespace hippo::cqa {

struct HippoOptions {
  enum class MembershipMode {
    kQuery,               ///< base system: membership via engine queries
    kKnowledgeGathering,  ///< KG: in-memory indexes, no queries
  };
  MembershipMode membership = MembershipMode::kKnowledgeGathering;

  /// Conflict-free shortcut: candidates whose ground formula touches only
  /// conflict-free facts skip CNF + Prover entirely.
  bool use_filtering = true;

  /// Pipeline parallelism: envelope evaluation partitions its
  /// row-at-a-time operators into row ranges (ExecParallel), and the
  /// prover loop — candidates are decided independently — shards across
  /// this many worker threads (1 = sequential; 0 = one per hardware
  /// thread, the same ResolveThreadCount convention as DetectOptions).
  /// Results are bit-identical regardless of thread count.
  size_t num_threads = 1;

  /// Conflict-detection options (threads, FD sharding, fast path) used when
  /// the conflict hypergraph must be (re)built on behalf of this call.
  /// Unset = the Database's configured DetectOptions. Ignored when a cached
  /// hypergraph already exists — the cache is reused unchanged.
  std::optional<DetectOptions> detect;
};

struct HippoStats {
  size_t candidates = 0;
  size_t answers = 0;
  size_t filtered_shortcuts = 0;   ///< candidates decided by filtering
  size_t constant_formulas = 0;    ///< candidates decided during grounding
  size_t prover_invocations = 0;   ///< candidates that reached the Prover
  size_t clauses_checked = 0;
  size_t membership_checks = 0;    ///< total lookups (queries or index hits)
  size_t edge_choices_tried = 0;
  double envelope_seconds = 0;
  double prove_seconds = 0;        ///< grounding + CNF + prover
  double total_seconds = 0;
};

class HippoEngine {
 public:
  HippoEngine(const Catalog& catalog, const ConflictHypergraph& graph)
      : catalog_(catalog), graph_(graph) {}

  /// Computes the consistent answers to a bound plan. The plan must pass
  /// CheckSjudSupported; a top-level SortNode is honored on the output.
  /// Const: the engine only reads the catalog and hypergraph, so any number
  /// of engines (or threads within one engine) may evaluate concurrently
  /// against the same immutable snapshot.
  Result<ResultSet> ConsistentAnswers(const PlanNode& plan,
                                      const HippoOptions& options,
                                      HippoStats* stats = nullptr) const;

  /// Decides whether a single candidate tuple is a consistent answer.
  Result<bool> IsConsistentAnswer(const PlanNode& plan, const Row& tuple,
                                  const HippoOptions& options,
                                  HippoStats* stats = nullptr) const;

 private:
  Result<bool> DecideCandidate(Grounder* grounder, HProver* prover,
                               const Row& tuple, const HippoOptions& options,
                               HippoStats* stats) const;

  const Catalog& catalog_;
  const ConflictHypergraph& graph_;
};

}  // namespace hippo::cqa
