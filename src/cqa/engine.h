// HippoEngine: the end-to-end pipeline of the paper's Figure 1.
//
//   Query ─► Enveloping ─► Evaluation ─► Candidates ─► Prover ─► Answer Set
//                              ▲                          ▲
//                             DB ◄── Conflict Detection ──┘ (hypergraph)
//
// Given a bound SJUD plan and the conflict hypergraph, the engine evaluates
// the envelope to obtain candidates, grounds each candidate into a formula
// over base facts, converts to CNF and lets the HProver decide, clause by
// clause, whether any repair falsifies it. Candidates surviving all clauses
// form the consistent answer set.
#pragma once

#include <chrono>
#include <optional>

#include "catalog/catalog.h"
#include "cqa/cnf.h"
#include "detect/detector.h"
#include "cqa/ground_formula.h"
#include "cqa/knowledge.h"
#include "cqa/prover.h"
#include "constraints/constraint.h"
#include "constraints/foreign_key.h"
#include "exec/executor.h"
#include "hypergraph/hypergraph.h"
#include "obs/trace.h"
#include "plan/logical_plan.h"
#include "plan/router.h"

namespace hippo::cqa {

struct HippoOptions {
  enum class MembershipMode {
    kQuery,               ///< base system: membership via engine queries
    kKnowledgeGathering,  ///< KG: in-memory indexes, no queries
  };
  MembershipMode membership = MembershipMode::kKnowledgeGathering;

  /// Conflict-free shortcut: candidates whose ground formula touches only
  /// conflict-free facts skip CNF + Prover entirely.
  bool use_filtering = true;

  /// Pipeline parallelism: envelope evaluation partitions its
  /// row-at-a-time operators into row ranges (ExecParallel), and the
  /// prover loop — candidates are decided independently — shards across
  /// this many worker threads (1 = sequential; 0 = one per hardware
  /// thread, the same ResolveThreadCount convention as DetectOptions).
  /// Results are bit-identical regardless of thread count.
  /// Service callers: service::EffectiveOptions::Resolve produces a
  /// HippoOptions with this field aligned to ServiceOptions::threads —
  /// prefer that one resolution point over setting it per call site.
  size_t num_threads = 1;

  /// Conflict-detection options (threads, FD sharding, fast path) used when
  /// the conflict hypergraph must be (re)built on behalf of this call.
  /// Unset = the Database's configured DetectOptions. When a cached
  /// hypergraph already exists the cache is reused unchanged and an
  /// explicitly set `detect` has no effect — the Database reports this via
  /// HippoStats::detect_options_ignored so a mismatched DetectOptions
  /// cannot silently masquerade as a perf change.
  std::optional<DetectOptions> detect;

  /// Physical execution engine for envelope evaluation and the first-order
  /// routes (exec/executor.h): kBatch is the vectorized columnar engine,
  /// kRow the row-at-a-time oracle. Results are bit-identical either way.
  ExecEngine exec_engine = ExecEngine::kBatch;

  /// Route selection (plan/router.h): kAuto dispatches each query to the
  /// cheapest sound engine (conflict-free plain evaluation → first-order
  /// rewriting → prover); the force modes pin one route and fail with
  /// NotSupported when it cannot soundly serve the query. Differential
  /// tests and benches use the force modes to compare routes.
  RouteMode route = RouteMode::kAuto;

  /// Optional per-query trace sink (obs/trace.h). When set, the engine
  /// records the route taken plus child spans for envelope evaluation,
  /// the prover loop, and — through ExecContext::trace — every executor
  /// operator (name, wall time, cardinality). Null (the default) keeps
  /// the query untraced at one-branch-per-phase cost. Tracing never
  /// changes answers: rows, order, and stats are bit-identical on/off.
  obs::TraceSpan* trace = nullptr;
};

struct HippoStats {
  size_t candidates = 0;
  size_t answers = 0;
  size_t filtered_shortcuts = 0;   ///< candidates decided by filtering
  size_t constant_formulas = 0;    ///< candidates decided during grounding
  size_t prover_invocations = 0;   ///< candidates that reached the Prover
  size_t clauses_checked = 0;
  size_t membership_checks = 0;    ///< total lookups (queries or index hits)
  size_t edge_choices_tried = 0;
  double envelope_seconds = 0;
  double prove_seconds = 0;        ///< grounding + CNF + prover
  double total_seconds = 0;

  /// Route taken by the most recent ConsistentAnswers call.
  RouteKind route = RouteKind::kNone;
  /// Per-route call counts and cumulative latency (seconds). The rewrite
  /// buckets cover both the ABC and KW first-order methods.
  size_t routed_conflict_free = 0;
  size_t routed_rewrite = 0;
  size_t routed_prover = 0;
  double conflict_free_route_seconds = 0;
  double rewrite_route_seconds = 0;
  double prover_route_seconds = 0;
  /// Calls whose explicitly set HippoOptions::detect was ignored because a
  /// cached hypergraph was reused (maintained by Database, which owns the
  /// cache).
  size_t detect_options_ignored = 0;
};

class HippoEngine {
 public:
  /// `constraints` / `foreign_keys` enable the first-order routes of the
  /// query router; with the defaults (null) every query takes the prover
  /// path, the pre-router behavior.
  HippoEngine(const Catalog& catalog, const ConflictHypergraph& graph,
              const std::vector<DenialConstraint>* constraints = nullptr,
              const std::vector<ForeignKeyConstraint>* foreign_keys = nullptr)
      : catalog_(catalog),
        graph_(graph),
        constraints_(constraints),
        foreign_keys_(foreign_keys) {}

  /// Computes the consistent answers to a bound plan, dispatching to the
  /// cheapest sound route (or the one forced by options.route); the plan
  /// must pass CheckSjudSupported for the prover route, and may use
  /// narrowing projection when a first-order route can serve it. A
  /// top-level SortNode is honored on the output; ties under the sort keys
  /// are broken by the row total order so every route returns bit-identical
  /// ordered results. Const: the engine only reads the catalog and
  /// hypergraph, so any number of engines (or threads within one engine)
  /// may evaluate concurrently against the same immutable snapshot.
  Result<ResultSet> ConsistentAnswers(const PlanNode& plan,
                                      const HippoOptions& options,
                                      HippoStats* stats = nullptr) const;

  /// Decides whether a single candidate tuple is a consistent answer.
  Result<bool> IsConsistentAnswer(const PlanNode& plan, const Row& tuple,
                                  const HippoOptions& options,
                                  HippoStats* stats = nullptr) const;

 private:
  Result<bool> DecideCandidate(Grounder* grounder, HProver* prover,
                               const Row& tuple, const HippoOptions& options,
                               HippoStats* stats) const;

  /// Serves a first-order route: plain evaluation of `exec_plan` (the
  /// original plan for kConflictFree, the rewritten one otherwise), with
  /// the output schema and root sort of `original`.
  Result<ResultSet> ServeFirstOrder(const PlanNode& original,
                                    const PlanNode& exec_plan,
                                    RouteKind kind,
                                    const HippoOptions& options,
                                    HippoStats* stats) const;

  Result<ResultSet> ServeProver(const PlanNode& plan,
                                const HippoOptions& options,
                                HippoStats* stats) const;

  const Catalog& catalog_;
  const ConflictHypergraph& graph_;
  const std::vector<DenialConstraint>* constraints_ = nullptr;
  const std::vector<ForeignKeyConstraint>* foreign_keys_ = nullptr;
};

}  // namespace hippo::cqa
