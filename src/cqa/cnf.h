// CNF conversion of ground formulas.
//
// "Q true in every repair" distributes over conjunction, so the engine
// converts the ground formula to CNF and asks the Prover one clause at a
// time: the candidate is a consistent answer iff no clause can be falsified
// by any repair. CNF blow-up is exponential only in the query size (the
// formula shape mirrors the query), never in the data.
#pragma once

#include <vector>

#include "cqa/ground_formula.h"

namespace hippo::cqa {

struct Literal {
  RowId fact;
  bool positive = true;

  bool operator==(const Literal& o) const {
    return fact == o.fact && positive == o.positive;
  }
};

/// A disjunction of literals.
struct Clause {
  std::vector<Literal> literals;

  std::string ToString() const;
};

/// Result of CNF conversion. When `is_constant`, the formula needed no
/// clauses (`constant_value` gives its truth in every repair).
struct CnfResult {
  bool is_constant = false;
  bool constant_value = false;
  std::vector<Clause> clauses;
};

/// Converts to CNF with simplifications: duplicate literals collapse,
/// tautological clauses (p ∨ ¬p) are dropped, duplicate clauses are merged.
CnfResult ToCnf(const GroundFormula& formula);

}  // namespace hippo::cqa
