#include "cqa/engine.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "cqa/envelope.h"
#include "expr/evaluator.h"
#include "plan/sjud.h"

namespace hippo::cqa {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::unique_ptr<MembershipProvider> MakeProvider(
    const Catalog& catalog, HippoOptions::MembershipMode mode) {
  if (mode == HippoOptions::MembershipMode::kQuery) {
    return std::make_unique<QueryMembershipProvider>(catalog);
  }
  return std::make_unique<IndexMembershipProvider>(catalog);
}

}  // namespace

Result<bool> HippoEngine::DecideCandidate(Grounder* grounder, HProver* prover,
                                          const Row& tuple,
                                          const HippoOptions& options,
                                          HippoStats* stats) const {
  HIPPO_ASSIGN_OR_RETURN(GroundFormula formula, grounder->Ground(tuple));

  if (formula.IsConst()) {
    if (stats != nullptr) ++stats->constant_formulas;
    return formula.const_value;
  }
  if (options.use_filtering && AllFactsConflictFree(formula, graph_)) {
    // Conflict-free facts are in every repair: the formula is constant
    // across repairs, equal to its value with all facts present.
    if (stats != nullptr) ++stats->filtered_shortcuts;
    return formula.Eval([](RowId) { return true; });
  }

  CnfResult cnf = ToCnf(formula);
  if (cnf.is_constant) {
    if (stats != nullptr) ++stats->constant_formulas;
    return cnf.constant_value;
  }
  if (stats != nullptr) ++stats->prover_invocations;
  for (const Clause& clause : cnf.clauses) {
    if (prover->IsFalsifiable(clause)) return false;
  }
  return true;
}

namespace {

/// Orders rows under the root SortNode's keys, ties broken by the row
/// total order — a total order, so every route (prover, rewriting, plain
/// evaluation) emits bit-identical ordered output. No-op without a root
/// sort (routes may then differ in order; answer *sets* are identical).
void SortAnswers(const PlanNode& plan, std::vector<Row>* rows) {
  if (plan.kind() != PlanKind::kSort) return;
  const auto& sort = static_cast<const SortNode&>(plan);
  std::sort(rows->begin(), rows->end(),
            [&sort](const Row& a, const Row& b) {
              for (const SortNode::Key& k : sort.keys()) {
                Value va = EvalExpr(*k.expr, a);
                Value vb = EvalExpr(*k.expr, b);
                int c = va.Compare(vb);
                if (c != 0) return k.ascending ? c < 0 : c > 0;
              }
              return RowLess(a, b);
            });
}

}  // namespace

Result<ResultSet> HippoEngine::ServeFirstOrder(const PlanNode& original,
                                               const PlanNode& exec_plan,
                                               RouteKind kind,
                                               const HippoOptions& options,
                                               HippoStats* stats) const {
  auto t0 = Clock::now();
  // Evaluate below any root sort; ordering is re-applied canonically so
  // ties match the other routes.
  const PlanNode* body = &exec_plan;
  if (body->kind() == PlanKind::kSort) body = &body->child(0);
  ExecContext ctx{&catalog_, nullptr};
  ctx.parallel.num_threads = options.num_threads;
  ctx.engine = options.exec_engine;
  obs::TraceSpan* span = options.trace == nullptr
                             ? nullptr
                             : options.trace->StartChild("evaluate");
  ctx.trace = span;
  HIPPO_ASSIGN_OR_RETURN(ResultSet result, Execute(*body, ctx));
  result.schema = original.schema();
  SortAnswers(original, &result.rows);
  if (span != nullptr) {
    span->SetAttr("rows", static_cast<int64_t>(result.rows.size()));
    span->SetAttr("threads", static_cast<int64_t>(
                                 ResolveThreadCount(options.num_threads)));
    span->End();
  }
  if (stats != nullptr) {
    double secs = Seconds(t0, Clock::now());
    stats->answers += result.rows.size();
    stats->total_seconds += secs;
    if (kind == RouteKind::kConflictFree) {
      ++stats->routed_conflict_free;
      stats->conflict_free_route_seconds += secs;
    } else {
      ++stats->routed_rewrite;
      stats->rewrite_route_seconds += secs;
    }
  }
  return result;
}

Result<ResultSet> HippoEngine::ConsistentAnswers(const PlanNode& plan,
                                                 const HippoOptions& options,
                                                 HippoStats* stats) const {
  HIPPO_ASSIGN_OR_RETURN(
      RouteDecision route,
      ClassifyRoute(plan, catalog_, constraints_, foreign_keys_, &graph_,
                    options.route));
  if (stats != nullptr) stats->route = route.kind;
  if (options.trace != nullptr) {
    options.trace->SetAttr("route", RouteKindName(route.kind));
  }
  switch (route.kind) {
    case RouteKind::kConflictFree:
      return ServeFirstOrder(plan, plan, route.kind, options, stats);
    case RouteKind::kRewriteAbc:
    case RouteKind::kRewriteKw:
      return ServeFirstOrder(plan, *route.rewritten, route.kind, options,
                             stats);
    default:
      break;
  }
  return ServeProver(plan, options, stats);
}

Result<ResultSet> HippoEngine::ServeProver(const PlanNode& plan,
                                           const HippoOptions& options,
                                           HippoStats* stats) const {
  HIPPO_RETURN_NOT_OK(CheckSjudSupported(plan));
  auto t0 = Clock::now();

  // 1. Enveloping + evaluation by the relational engine. The evaluation
  //    shares the prover loop's thread budget: with num_threads > 1 the
  //    executor partitions its row-at-a-time operators (filter, project,
  //    join/anti-join probe, product) into row ranges merged in partition
  //    order, so the candidate set — rows and order — is bit-identical to
  //    the serial evaluation (see ExecParallel in exec/executor.h).
  PlanNodePtr envelope = BuildEnvelope(plan);
  ExecContext ctx{&catalog_, nullptr};
  ctx.parallel.num_threads = options.num_threads;
  ctx.engine = options.exec_engine;
  obs::TraceSpan* envelope_span =
      options.trace == nullptr ? nullptr
                               : options.trace->StartChild("envelope");
  ctx.trace = envelope_span;
  HIPPO_ASSIGN_OR_RETURN(ResultSet candidates, Execute(*envelope, ctx));
  if (envelope_span != nullptr) {
    envelope_span->SetAttr("candidates",
                           static_cast<int64_t>(candidates.rows.size()));
    envelope_span->End();
  }
  auto t1 = Clock::now();

  // 2. Prover loop over candidates. Candidates are decided independently;
  //    with num_threads > 1 the loop shards, each worker owning its own
  //    membership provider and prover (the catalog and hypergraph are
  //    read-only here). Verdicts land in a per-candidate array so the
  //    output order is deterministic.
  ResultSet answers;
  answers.schema = plan.schema();
  size_t prover_membership_checks = 0;
  size_t prover_clauses = 0;
  size_t prover_edge_choices = 0;
  size_t num_threads = ResolveThreadCount(options.num_threads);
  size_t workers_used = 1;
  obs::TraceSpan* prover_span =
      options.trace == nullptr ? nullptr
                               : options.trace->StartChild("prover");
  if (num_threads <= 1 || candidates.rows.size() < 2) {
    std::unique_ptr<MembershipProvider> membership =
        MakeProvider(catalog_, options.membership);
    Grounder grounder(plan, membership.get());
    HProver prover(graph_);
    for (const Row& tuple : candidates.rows) {
      HIPPO_ASSIGN_OR_RETURN(
          bool ok,
          DecideCandidate(&grounder, &prover, tuple, options, stats));
      if (ok) answers.rows.push_back(tuple);
    }
    prover_membership_checks = membership->NumLookups();
    prover_clauses = prover.stats().clauses_checked;
    prover_edge_choices = prover.stats().edge_choices_tried;
  } else {
    size_t workers = std::min(num_threads, candidates.rows.size());
    workers_used = workers;
    std::vector<char> verdict(candidates.rows.size(), 0);
    std::vector<HippoStats> worker_stats(workers);
    std::vector<Status> worker_status(workers);
    std::atomic<size_t> next{0};
    auto run_worker = [&](size_t w) {
      std::unique_ptr<MembershipProvider> membership =
          MakeProvider(catalog_, options.membership);
      Grounder grounder(plan, membership.get());
      HProver prover(graph_);
      constexpr size_t kChunk = 64;
      for (;;) {
        size_t begin = next.fetch_add(kChunk);
        if (begin >= candidates.rows.size()) break;
        size_t end = std::min(begin + kChunk, candidates.rows.size());
        for (size_t i = begin; i < end; ++i) {
          Result<bool> ok =
              DecideCandidate(&grounder, &prover, candidates.rows[i],
                              options, &worker_stats[w]);
          if (!ok.ok()) {
            worker_status[w] = ok.status();
            return;
          }
          verdict[i] = ok.value() ? 1 : 0;
        }
      }
      worker_stats[w].membership_checks += membership->NumLookups();
      worker_stats[w].clauses_checked += prover.stats().clauses_checked;
      worker_stats[w].edge_choices_tried +=
          prover.stats().edge_choices_tried;
    };
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back(run_worker, w);
    }
    for (std::thread& t : threads) t.join();
    for (size_t w = 0; w < workers; ++w) {
      HIPPO_RETURN_NOT_OK(worker_status[w]);
      if (stats != nullptr) {
        stats->filtered_shortcuts += worker_stats[w].filtered_shortcuts;
        stats->constant_formulas += worker_stats[w].constant_formulas;
        stats->prover_invocations += worker_stats[w].prover_invocations;
      }
      prover_membership_checks += worker_stats[w].membership_checks;
      prover_clauses += worker_stats[w].clauses_checked;
      prover_edge_choices += worker_stats[w].edge_choices_tried;
    }
    for (size_t i = 0; i < candidates.rows.size(); ++i) {
      if (verdict[i]) answers.rows.push_back(candidates.rows[i]);
    }
  }
  auto t2 = Clock::now();
  if (prover_span != nullptr) {
    prover_span->SetAttr("candidates",
                         static_cast<int64_t>(candidates.rows.size()));
    prover_span->SetAttr("answers",
                         static_cast<int64_t>(answers.rows.size()));
    prover_span->SetAttr("workers", static_cast<int64_t>(workers_used));
    prover_span->SetAttr("clauses",
                         static_cast<int64_t>(prover_clauses));
    prover_span->SetAttr("edges_touched",
                         static_cast<int64_t>(prover_edge_choices));
    prover_span->SetAttr("membership_checks",
                         static_cast<int64_t>(prover_membership_checks));
    prover_span->End();
  }

  // 3. Honor a top-level ORDER BY (canonical tie order shared by every
  //    route).
  SortAnswers(plan, &answers.rows);

  if (stats != nullptr) {
    stats->candidates += candidates.rows.size();
    stats->answers += answers.rows.size();
    stats->membership_checks += prover_membership_checks;
    stats->clauses_checked += prover_clauses;
    stats->edge_choices_tried += prover_edge_choices;
    stats->envelope_seconds += Seconds(t0, t1);
    stats->prove_seconds += Seconds(t1, t2);
    stats->total_seconds += Seconds(t0, t2);
    ++stats->routed_prover;
    stats->prover_route_seconds += Seconds(t0, t2);
  }
  return answers;
}

Result<bool> HippoEngine::IsConsistentAnswer(const PlanNode& plan,
                                             const Row& tuple,
                                             const HippoOptions& options,
                                             HippoStats* stats) const {
  HIPPO_RETURN_NOT_OK(CheckSjudSupported(plan));
  std::unique_ptr<MembershipProvider> membership =
      MakeProvider(catalog_, options.membership);
  Grounder grounder(plan, membership.get());
  HProver prover(graph_);
  HIPPO_ASSIGN_OR_RETURN(
      bool ok, DecideCandidate(&grounder, &prover, tuple, options, stats));
  if (stats != nullptr) {
    stats->membership_checks += membership->NumLookups();
    stats->clauses_checked += prover.stats().clauses_checked;
  }
  return ok;
}

}  // namespace hippo::cqa
