#include "cqa/prover.h"

#include <algorithm>

namespace hippo::cqa {

bool HProver::TryAdd(RowId v, VertexSet* blockers) {
  if (blockers->count(v)) return true;  // already present, still independent
  blockers->insert(v);
  ++stats_.independence_checks;
  for (auto e : graph_.IncidentEdges(v)) {
    if (graph_.EdgeInside(e, *blockers)) {
      blockers->erase(v);
      return false;
    }
  }
  return true;
}

bool HProver::Search(const std::vector<RowId>& positives, size_t next,
                     VertexSet* blockers) {
  if (next == positives.size()) return true;
  RowId ti = positives[next];
  // ti may have been added as a blocker for an earlier positive (or be one
  // of the sj): it would then be required IN the repair, so this literal
  // cannot be falsified along this branch.
  if (blockers->count(ti)) return false;
  for (auto e : graph_.IncidentEdges(ti)) {
    ++stats_.edge_choices_tried;
    const std::vector<RowId>& edge = graph_.edge(e);
    // The other endpoints become blockers; they must not be positives
    // themselves (a positive must stay OUT of the repair).
    bool usable = true;
    for (const RowId& u : edge) {
      if (u != ti && std::find(positives.begin(), positives.end(), u) !=
                         positives.end()) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;

    // Add edge ∖ {ti} to the blockers, tracking what we inserted so the
    // choice can be undone on backtrack.
    std::vector<RowId> added;
    bool ok = true;
    for (const RowId& u : edge) {
      if (u == ti) continue;
      if (blockers->count(u)) continue;
      if (!TryAdd(u, blockers)) {
        ok = false;
        break;
      }
      added.push_back(u);
    }
    if (ok && Search(positives, next + 1, blockers)) return true;
    for (const RowId& u : added) blockers->erase(u);
  }
  return false;
}

bool HProver::IsFalsifiable(const Clause& clause) {
  ++stats_.clauses_checked;

  std::vector<RowId> positives;
  VertexSet blockers;

  // Seed the blocker set with the negative literals' facts: they must all
  // be inside the falsifying repair.
  for (const Literal& lit : clause.literals) {
    if (lit.positive) continue;
    if (!TryAdd(lit.fact, &blockers)) {
      return false;  // the sj themselves conflict: no repair contains all
    }
  }
  for (const Literal& lit : clause.literals) {
    if (!lit.positive) continue;
    // A conflict-free positive fact lies in every repair: clause holds.
    if (!graph_.IsConflicting(lit.fact)) return false;
    // A positive that must simultaneously be IN the repair (as a negative
    // literal's fact) would make the clause a tautology; CNF conversion
    // removes those, but blockers may also grow during search — checked
    // there. Here: if it is already a required member, not falsifiable.
    if (blockers.count(lit.fact)) return false;
    positives.push_back(lit.fact);
  }

  // Order positives by degree (fewest incident edges first) to fail fast.
  if (order_positives_by_degree_) {
    std::sort(positives.begin(), positives.end(),
              [this](const RowId& a, const RowId& b) {
                return graph_.IncidentEdges(a).size() <
                       graph_.IncidentEdges(b).size();
              });
  }

  bool falsifiable = Search(positives, 0, &blockers);
  if (falsifiable) ++stats_.falsifiable_clauses;
  return falsifiable;
}

}  // namespace hippo::cqa
