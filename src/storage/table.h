// In-memory row-store table with set semantics and stable row identifiers.
//
// Hippo's repair theory is defined over *sets* of tuples: a repair is a
// maximal consistent subset of the instance, and the conflict hypergraph
// connects tuples (not physical duplicates). The table therefore enforces
// set semantics on insert: re-inserting an existing row is a silent no-op,
// so every fact R(t) corresponds to exactly one RowId.
//
// DELETE is implemented with tombstones: a deleted row keeps its slot (and
// therefore its RowId), scans skip it, and re-inserting the same values
// resurrects the original RowId. Stable RowIds are what make incremental
// maintenance of the conflict hypergraph under updates possible.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/hash.h"
#include "common/status.h"
#include "storage/column_batch.h"
#include "types/value.h"

namespace hippo {

/// Identifies a tuple in the database: (table ordinal in catalog, row index).
struct RowId {
  uint32_t table = 0;
  uint32_t row = 0;

  bool operator==(const RowId& o) const {
    return table == o.table && row == o.row;
  }
  bool operator!=(const RowId& o) const { return !(*this == o); }
  bool operator<(const RowId& o) const {
    return table != o.table ? table < o.table : row < o.row;
  }
  uint64_t Pack() const {
    return (static_cast<uint64_t>(table) << 32) | row;
  }
  std::string ToString() const {
    return "t" + std::to_string(table) + "#" + std::to_string(row);
  }
};

struct RowIdHasher {
  size_t operator()(const RowId& r) const { return Mix64(r.Pack()); }
};

/// \brief Immutable columnar image of a table's physical row slots.
///
/// One ColumnVector per schema column over slots [0, num_slots) — including
/// tombstoned slots, so the physical index of a cell IS its RowId row and
/// liveness stays a per-scan selection concern. `rowids` is an INT column
/// holding 0..num_slots-1 for plans that project the row id.
struct TableColumns {
  std::vector<ColumnVectorPtr> columns;
  ColumnVectorPtr rowids;
  size_t num_slots = 0;

  size_t ApproxBytes() const;
};

/// \brief A base relation: schema + rows, append-only with set semantics.
class Table {
 public:
  Table(uint32_t id, std::string name, Schema schema)
      : id_(id), name_(std::move(name)), schema_(std::move(schema)) {}

  // The columnar-view cache sits behind a mutex (lazily built on const,
  // snapshot-shared tables), so copying needs to be spelled out; the copy
  // shares the immutable view — both tables image the same slots.
  Table(const Table& other);
  Table& operator=(const Table& other);

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of physical row slots (live + tombstoned). Iterate [0, NumRows())
  /// and filter with IsLive() to visit the instance.
  size_t NumRows() const { return rows_.size(); }
  /// Number of live (non-deleted) rows — the cardinality of the relation.
  size_t NumLiveRows() const { return num_live_; }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// True when slot `i` holds a live row (false once deleted).
  bool IsLive(size_t i) const { return i < live_.size() && live_[i]; }

  /// Coerces `values` to the column types — the canonical stored form that
  /// Insert() writes and Find() probes with. Errors on arity mismatch or
  /// uncoercible values. Lets writers probe for set-semantics no-ops on a
  /// const (snapshot-shared) view before paying a copy-on-write clone.
  Result<Row> CoerceRow(const Row& values) const;

  /// Inserts a row after coercing each value to the column type.
  /// Returns the RowId of the (new, pre-existing, or resurrected) row and
  /// whether the live instance changed (true for new rows and for
  /// resurrections of tombstoned rows). Errors on arity mismatch or
  /// uncoercible values.
  Result<std::pair<RowId, bool>> Insert(const Row& values);

  /// Tombstones the row in slot `row_index`. Returns true when the row was
  /// live (i.e. the instance changed), false when already deleted or out of
  /// range. The slot and its RowId remain reserved.
  bool Delete(uint32_t row_index);

  /// Looks up the RowId of an exact *live* row, if present (O(1) expected).
  /// `values` is coerced to the column types first (the index stores rows in
  /// canonical form), so probing an INT column with 2.0 finds the row; an
  /// uncoercible or wrong-arity probe is simply a miss.
  std::optional<RowId> Find(const Row& values) const;

  /// Clears all rows (used by workload generators between configurations).
  void Clear();

  /// Columnar image of the physical slots, built lazily on first use and
  /// memoized until a write adds a slot (Insert of a NEW row) or Clear().
  /// Tombstone flips do NOT invalidate it — liveness is per-scan selection,
  /// not part of the image. Thread-safe on shared snapshots.
  std::shared_ptr<const TableColumns> columnar() const;

  /// Rough resident size of this table in bytes: rows (including string
  /// payloads, SSO-aware), tombstone bits, the full-row hash index with its
  /// bucket array, and the memoized columnar view's buffers. Used by the
  /// per-snapshot memory accounting (Catalog::ApproxBytes, `.mem`).
  size_t ApproxBytes() const;

 private:
  void InvalidateColumnar();

  uint32_t id_;
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t num_live_ = 0;
  // Full-row hash index enforcing set semantics and serving Find(); entries
  // for tombstoned rows are kept so a re-insert resurrects the old RowId.
  std::unordered_map<Row, uint32_t, RowHasher, RowEq> index_;
  // Memoized columnar image; guarded because readers materialize it lazily
  // on const snapshot-shared tables from concurrent query threads.
  mutable std::mutex columnar_mu_;
  mutable std::shared_ptr<const TableColumns> columnar_;
};

}  // namespace hippo
