#include "storage/column_batch.h"

#include "common/status.h"

namespace hippo {

namespace {

bool IsNumericType(TypeId t) {
  return t == TypeId::kInt || t == TypeId::kDouble;
}

constexpr size_t kSsoCapacity = 15;  // typical libstdc++/libc++ SSO buffer

size_t StringHeapBytes(const std::string& s) {
  // Strings at or under the SSO buffer live inline in the object; only
  // longer ones own a heap allocation (capacity + NUL).
  return s.capacity() > kSsoCapacity ? s.capacity() + 1 : 0;
}

}  // namespace

ColumnVector ColumnVector::FromValues(TypeId type, const std::vector<Value>& values) {
  ColumnVector col(type);
  col.Reserve(values.size());
  for (const Value& v : values) col.AppendValue(v);
  return col;
}

Value ColumnVector::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  if (mixed_active_) return mixed_[i];
  switch (type_) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool:
      return Value::Bool(bools_[i] != 0);
    case TypeId::kInt:
      return Value::Int(ints_[i]);
    case TypeId::kDouble:
      return Value::Double(doubles_[i]);
    case TypeId::kString:
      return Value::String(strings_[i]);
  }
  return Value::Null();
}

void ColumnVector::Reserve(size_t n) {
  if (mixed_active_) {
    mixed_.reserve(n);
    return;
  }
  switch (type_) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      bools_.reserve(n);
      break;
    case TypeId::kInt:
      ints_.reserve(n);
      break;
    case TypeId::kDouble:
      doubles_.reserve(n);
      break;
    case TypeId::kString:
      strings_.reserve(n);
      break;
  }
}

void ColumnVector::EnsureValidBits() {
  if (!valid_.empty()) return;
  valid_.assign((size_ + 63) / 64, ~uint64_t{0});
  // Clear any bits past size_ in the last word so growth stays consistent.
  size_t tail = size_ % 64;
  if (tail != 0 && !valid_.empty()) {
    valid_.back() &= (uint64_t{1} << tail) - 1;
  }
}

void ColumnVector::MarkNull() {
  // Called after size_ was incremented for the new (placeholder) cell.
  EnsureValidBits();
  size_t i = size_ - 1;
  if (valid_.size() <= i / 64) valid_.resize(i / 64 + 1, 0);
  valid_[i / 64] &= ~(uint64_t{1} << (i % 64));
}

void ColumnVector::SwitchToMixed() {
  mixed_.clear();
  mixed_.reserve(size_ + 1);
  for (size_t i = 0; i < size_; ++i) mixed_.push_back(ValueAt(i));
  mixed_active_ = true;
  ints_.clear();
  doubles_.clear();
  bools_.clear();
  strings_.clear();
  // Validity bits stay authoritative for NULL checks in mixed mode too.
}

void ColumnVector::AppendValue(const Value& v) {
  if (!mixed_active_ && !v.is_null() && v.type() != type_) SwitchToMixed();
  if (mixed_active_) {
    mixed_.push_back(v);
    ++size_;
    if (!valid_.empty() || v.is_null()) {
      if (v.is_null()) {
        MarkNull();
      } else {
        EnsureValidBits();
        size_t i = size_ - 1;
        if (valid_.size() <= i / 64) valid_.resize(i / 64 + 1, 0);
        valid_[i / 64] |= uint64_t{1} << (i % 64);
      }
    }
    return;
  }
  switch (type_) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      bools_.push_back(v.is_null() ? 0 : (v.AsBool() ? 1 : 0));
      break;
    case TypeId::kInt:
      ints_.push_back(v.is_null() ? 0 : v.AsInt());
      break;
    case TypeId::kDouble:
      doubles_.push_back(v.is_null() ? 0.0 : v.AsDouble());
      break;
    case TypeId::kString:
      strings_.push_back(v.is_null() ? std::string() : v.AsString());
      break;
  }
  ++size_;
  if (v.is_null()) {
    MarkNull();
  } else if (!valid_.empty()) {
    size_t i = size_ - 1;
    if (valid_.size() <= i / 64) valid_.resize(i / 64 + 1, 0);
    valid_[i / 64] |= uint64_t{1} << (i % 64);
  }
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.IsNull(i)) {
    AppendValue(Value::Null());
    return;
  }
  if (mixed_active_ || src.mixed_active_ || src.type_ != type_) {
    AppendValue(src.ValueAt(i));
    return;
  }
  switch (type_) {
    case TypeId::kNull:
      AppendValue(Value::Null());
      return;
    case TypeId::kBool:
      bools_.push_back(src.bools_[i]);
      break;
    case TypeId::kInt:
      ints_.push_back(src.ints_[i]);
      break;
    case TypeId::kDouble:
      doubles_.push_back(src.doubles_[i]);
      break;
    case TypeId::kString:
      strings_.push_back(src.strings_[i]);
      break;
  }
  ++size_;
  if (!valid_.empty()) {
    size_t j = size_ - 1;
    if (valid_.size() <= j / 64) valid_.resize(j / 64 + 1, 0);
    valid_[j / 64] |= uint64_t{1} << (j % 64);
  }
}

size_t ColumnVector::HashAt(size_t i) const {
  if (IsNull(i)) return HashNullScalar();
  if (mixed_active_) return mixed_[i].Hash();
  switch (type_) {
    case TypeId::kNull:
      return HashNullScalar();
    case TypeId::kBool:
      return HashBoolScalar(bools_[i] != 0);
    case TypeId::kInt:
      return HashNumericScalar(static_cast<double>(ints_[i]));
    case TypeId::kDouble:
      return HashNumericScalar(doubles_[i]);
    case TypeId::kString:
      return HashStringScalar(strings_[i]);
  }
  return 0;
}

bool ColumnVector::EqualsAt(size_t i, const ColumnVector& other, size_t j) const {
  bool an = IsNull(i), bn = other.IsNull(j);
  if (an || bn) return an && bn;
  if (!mixed_active_ && !other.mixed_active_) {
    if (IsNumericType(type_) && IsNumericType(other.type_)) {
      if (type_ == TypeId::kInt && other.type_ == TypeId::kInt) {
        return ints_[i] == other.ints_[j];
      }
      double a = type_ == TypeId::kInt ? static_cast<double>(ints_[i])
                                       : doubles_[i];
      double b = other.type_ == TypeId::kInt
                     ? static_cast<double>(other.ints_[j])
                     : other.doubles_[j];
      return a == b;
    }
    if (type_ != other.type_) return false;
    switch (type_) {
      case TypeId::kNull:
        return true;
      case TypeId::kBool:
        return bools_[i] == other.bools_[j];
      case TypeId::kInt:
      case TypeId::kDouble:
        return false;  // unreachable: numeric pairs handled above
      case TypeId::kString:
        return strings_[i] == other.strings_[j];
    }
    return false;
  }
  return ValueAt(i) == other.ValueAt(j);
}

int ColumnVector::CompareAt(size_t i, const ColumnVector& other, size_t j) const {
  if (!mixed_active_ && !other.mixed_active_ && type_ == other.type_ &&
      !IsNull(i) && !other.IsNull(j)) {
    switch (type_) {
      case TypeId::kInt: {
        int64_t a = ints_[i], b = other.ints_[j];
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      case TypeId::kDouble: {
        double a = doubles_[i], b = other.doubles_[j];
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      case TypeId::kString: {
        int c = strings_[i].compare(other.strings_[j]);
        return c == 0 ? 0 : (c < 0 ? -1 : 1);
      }
      default:
        break;
    }
  }
  return ValueAt(i).Compare(other.ValueAt(j));
}

size_t ColumnVector::ApproxBytes() const {
  size_t bytes = valid_.capacity() * sizeof(uint64_t);
  bytes += ints_.capacity() * sizeof(int64_t);
  bytes += doubles_.capacity() * sizeof(double);
  bytes += bools_.capacity() * sizeof(uint8_t);
  bytes += strings_.capacity() * sizeof(std::string);
  for (const std::string& s : strings_) bytes += StringHeapBytes(s);
  bytes += mixed_.capacity() * sizeof(Value);
  for (const Value& v : mixed_) {
    if (v.type() == TypeId::kString) bytes += StringHeapBytes(v.AsString());
  }
  return bytes;
}

ColumnBatch ColumnBatch::FromRows(const std::vector<Row>& rows,
                                  const std::vector<TypeId>& types) {
  std::vector<ColumnVectorPtr> columns;
  columns.reserve(types.size());
  for (size_t c = 0; c < types.size(); ++c) {
    auto col = std::make_shared<ColumnVector>(types[c]);
    col->Reserve(rows.size());
    for (const Row& r : rows) {
      col->AppendValue(c < r.size() ? r[c] : Value::Null());
    }
    columns.push_back(std::move(col));
  }
  return ColumnBatch(std::move(columns), rows.size());
}

Row ColumnBatch::RowAt(size_t row) const {
  Row out;
  out.reserve(columns_.size());
  uint32_t p = Physical(row);
  for (const ColumnVectorPtr& c : columns_) out.push_back(c->ValueAt(p));
  return out;
}

std::vector<Row> ColumnBatch::ToRows() const {
  std::vector<Row> out;
  size_t n = NumRows();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(RowAt(i));
  return out;
}

size_t ColumnBatch::RowHashAt(size_t row) const {
  // Mirrors HashRow: seed with the arity, then fold per-value hashes.
  size_t seed = columns_.size();
  uint32_t p = Physical(row);
  for (const ColumnVectorPtr& c : columns_) HashCombine(&seed, c->HashAt(p));
  return seed;
}

bool ColumnBatch::RowEqualsAt(size_t row, const ColumnBatch& other,
                              size_t other_row) const {
  if (columns_.size() != other.columns_.size()) return false;
  uint32_t p = Physical(row), q = other.Physical(other_row);
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (!columns_[c]->EqualsAt(p, *other.columns_[c], q)) return false;
  }
  return true;
}

ColumnBatch ColumnBatch::Narrow(const std::vector<uint32_t>& keep_logical)
    const {
  auto sel = std::make_shared<std::vector<uint32_t>>();
  sel->reserve(keep_logical.size());
  for (uint32_t i : keep_logical) sel->push_back(Physical(i));
  return WithSelection(std::move(sel));
}

size_t ColumnBatch::ApproxBytes() const {
  size_t bytes = 0;
  for (const ColumnVectorPtr& c : columns_) bytes += c->ApproxBytes();
  if (selection_) bytes += selection_->capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace hippo
