#include "storage/table.h"

#include "common/str_util.h"

namespace hippo {

Result<Row> Table::CoerceRow(const Row& values) const {
  if (values.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(StrFormat(
        "INSERT into %s: expected %zu values, got %zu", name_.c_str(),
        schema_.NumColumns(), values.size()));
  }
  Row coerced;
  coerced.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    HIPPO_ASSIGN_OR_RETURN(Value v, values[i].CastTo(schema_.column(i).type));
    coerced.push_back(std::move(v));
  }
  return coerced;
}

Result<std::pair<RowId, bool>> Table::Insert(const Row& values) {
  HIPPO_ASSIGN_OR_RETURN(Row coerced, CoerceRow(values));
  auto it = index_.find(coerced);
  if (it != index_.end()) {
    uint32_t idx = it->second;
    if (live_[idx]) {
      return std::make_pair(RowId{id_, idx}, false);
    }
    // Resurrect the tombstoned slot: same fact, same RowId.
    live_[idx] = true;
    ++num_live_;
    return std::make_pair(RowId{id_, idx}, true);
  }
  uint32_t idx = static_cast<uint32_t>(rows_.size());
  index_.emplace(coerced, idx);
  rows_.push_back(std::move(coerced));
  live_.push_back(true);
  ++num_live_;
  return std::make_pair(RowId{id_, idx}, true);
}

bool Table::Delete(uint32_t row_index) {
  if (row_index >= live_.size() || !live_[row_index]) return false;
  live_[row_index] = false;
  --num_live_;
  return true;
}

std::optional<RowId> Table::Find(const Row& values) const {
  auto it = index_.find(values);
  if (it == index_.end() || !live_[it->second]) return std::nullopt;
  return RowId{id_, it->second};
}

void Table::Clear() {
  rows_.clear();
  live_.clear();
  num_live_ = 0;
  index_.clear();
}

namespace {

size_t ApproxRowBytes(const Row& row) {
  size_t bytes = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (v.type() == TypeId::kString) bytes += v.AsString().capacity();
  }
  return bytes;
}

}  // namespace

size_t Table::ApproxBytes() const {
  size_t bytes = sizeof(Table) + name_.capacity();
  bytes += schema_.NumColumns() * sizeof(Column);
  for (const Row& row : rows_) bytes += ApproxRowBytes(row);
  bytes += live_.capacity() / 8;
  // The index stores a second copy of every row plus bucket overhead.
  for (const auto& [row, idx] : index_) {
    (void)idx;
    bytes += ApproxRowBytes(row) + sizeof(uint32_t) + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace hippo
