#include "storage/table.h"

#include "common/str_util.h"

namespace hippo {

size_t TableColumns::ApproxBytes() const {
  size_t bytes = sizeof(TableColumns);
  for (const ColumnVectorPtr& c : columns) {
    bytes += sizeof(ColumnVector) + c->ApproxBytes();
  }
  if (rowids) bytes += sizeof(ColumnVector) + rowids->ApproxBytes();
  return bytes;
}

Table::Table(const Table& other)
    : id_(other.id_),
      name_(other.name_),
      schema_(other.schema_),
      rows_(other.rows_),
      live_(other.live_),
      num_live_(other.num_live_),
      index_(other.index_) {
  std::lock_guard<std::mutex> lock(other.columnar_mu_);
  columnar_ = other.columnar_;  // same slots -> same immutable image
}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  id_ = other.id_;
  name_ = other.name_;
  schema_ = other.schema_;
  rows_ = other.rows_;
  live_ = other.live_;
  num_live_ = other.num_live_;
  index_ = other.index_;
  std::shared_ptr<const TableColumns> view;
  {
    std::lock_guard<std::mutex> lock(other.columnar_mu_);
    view = other.columnar_;
  }
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_ = std::move(view);
  return *this;
}

Result<Row> Table::CoerceRow(const Row& values) const {
  if (values.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(StrFormat(
        "INSERT into %s: expected %zu values, got %zu", name_.c_str(),
        schema_.NumColumns(), values.size()));
  }
  Row coerced;
  coerced.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    HIPPO_ASSIGN_OR_RETURN(Value v, values[i].CastTo(schema_.column(i).type));
    coerced.push_back(std::move(v));
  }
  return coerced;
}

Result<std::pair<RowId, bool>> Table::Insert(const Row& values) {
  HIPPO_ASSIGN_OR_RETURN(Row coerced, CoerceRow(values));
  auto it = index_.find(coerced);
  if (it != index_.end()) {
    uint32_t idx = it->second;
    if (live_[idx]) {
      return std::make_pair(RowId{id_, idx}, false);
    }
    // Resurrect the tombstoned slot: same fact, same RowId. The columnar
    // image stays valid — it carries every slot, live or not.
    live_[idx] = true;
    ++num_live_;
    return std::make_pair(RowId{id_, idx}, true);
  }
  uint32_t idx = static_cast<uint32_t>(rows_.size());
  index_.emplace(coerced, idx);
  rows_.push_back(std::move(coerced));
  live_.push_back(true);
  ++num_live_;
  InvalidateColumnar();  // a new slot extends the image
  return std::make_pair(RowId{id_, idx}, true);
}

bool Table::Delete(uint32_t row_index) {
  if (row_index >= live_.size() || !live_[row_index]) return false;
  live_[row_index] = false;
  --num_live_;
  return true;
}

std::optional<RowId> Table::Find(const Row& values) const {
  // The index stores rows in canonical (schema-coerced) form; probing with
  // the caller's literal types would silently miss e.g. Double(2.0) against
  // an INT column stored as Int(2). Coerce first — cheap fast path when the
  // probe already matches the schema.
  bool canonical = values.size() == schema_.NumColumns();
  for (size_t i = 0; canonical && i < values.size(); ++i) {
    canonical = values[i].is_null() ||
                values[i].type() == schema_.column(i).type;
  }
  if (canonical) {
    auto it = index_.find(values);
    if (it == index_.end() || !live_[it->second]) return std::nullopt;
    return RowId{id_, it->second};
  }
  Result<Row> coerced = CoerceRow(values);
  // Wrong arity or an uncoercible value cannot name a stored row: a miss.
  if (!coerced.ok()) return std::nullopt;
  auto it = index_.find(coerced.value());
  if (it == index_.end() || !live_[it->second]) return std::nullopt;
  return RowId{id_, it->second};
}

void Table::Clear() {
  rows_.clear();
  live_.clear();
  num_live_ = 0;
  index_.clear();
  InvalidateColumnar();
}

void Table::InvalidateColumnar() {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_.reset();
}

std::shared_ptr<const TableColumns> Table::columnar() const {
  {
    std::lock_guard<std::mutex> lock(columnar_mu_);
    if (columnar_) return columnar_;
  }
  // Build outside the lock (read-only over rows_; concurrent builders may
  // race benignly and one image wins — they are identical).
  auto view = std::make_shared<TableColumns>();
  view->num_slots = rows_.size();
  view->columns.reserve(schema_.NumColumns());
  for (size_t c = 0; c < schema_.NumColumns(); ++c) {
    auto col = std::make_shared<ColumnVector>(schema_.column(c).type);
    col->Reserve(rows_.size());
    for (const Row& r : rows_) col->AppendValue(r[c]);
    view->columns.push_back(std::move(col));
  }
  auto rowids = std::make_shared<ColumnVector>(TypeId::kInt);
  rowids->Reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    rowids->AppendValue(Value::Int(static_cast<int64_t>(i)));
  }
  view->rowids = std::move(rowids);

  std::lock_guard<std::mutex> lock(columnar_mu_);
  if (!columnar_) columnar_ = std::move(view);
  return columnar_;
}

namespace {

constexpr size_t kSsoCapacity = 15;  // typical libstdc++/libc++ SSO buffer

size_t ApproxRowBytes(const Row& row) {
  size_t bytes = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (v.type() == TypeId::kString) {
      // Short strings live inside the Value's SSO buffer (already counted
      // via sizeof(Value)); only longer ones own heap storage (+ NUL).
      size_t cap = v.AsString().capacity();
      if (cap > kSsoCapacity) bytes += cap + 1;
    }
  }
  return bytes;
}

}  // namespace

size_t Table::ApproxBytes() const {
  size_t bytes = sizeof(Table) + name_.capacity();
  bytes += schema_.NumColumns() * sizeof(Column);
  for (const Row& row : rows_) bytes += ApproxRowBytes(row);
  bytes += live_.capacity() / 8;
  // The index stores a second copy of every row plus node and bucket-array
  // overhead; the bucket array scales with bucket_count(), not size().
  for (const auto& [row, idx] : index_) {
    (void)idx;
    bytes += ApproxRowBytes(row) + sizeof(uint32_t) + 2 * sizeof(void*);
  }
  bytes += index_.bucket_count() * sizeof(void*);
  // The memoized columnar view owns its own typed buffers.
  std::shared_ptr<const TableColumns> view;
  {
    std::lock_guard<std::mutex> lock(columnar_mu_);
    view = columnar_;
  }
  if (view) bytes += view->ApproxBytes();
  return bytes;
}

}  // namespace hippo
