// Columnar batch representation for the vectorized execution engine.
//
// A ColumnVector stores one attribute of a batch as a typed vector (int64 /
// double / bool / string) plus a packed validity bitmap (absent bitmap =
// no NULLs). Values whose runtime type defies the declared column type
// (possible for intermediate results built from heterogeneous rows) flip
// the column into a per-cell `Value` fallback, so a ColumnVector can always
// represent exactly what a row-engine Row would — ValueAt() reproduces the
// original Value bit-for-bit, including its TypeId.
//
// A ColumnBatch is a set of shared immutable columns plus an optional
// *selection vector* of physical row indexes: filters and anti-joins
// narrow the selection without copying any column data, and Table exposes
// its lazily-materialized columnar view as shared columns so scans are
// zero-copy too.
//
// Determinism contract: HashAt / EqualsAt / CompareAt replicate
// Value::Hash / operator== / Compare exactly (numerics compare and hash by
// double value, NULL == NULL under identity semantics). The batch operators
// in src/exec rely on this to stay bit-identical to the row engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace hippo {

/// \brief One attribute of a batch: typed values + validity bits.
class ColumnVector {
 public:
  explicit ColumnVector(TypeId type) : type_(type) {}

  /// Builds a column of declared type `type` from a slice of values.
  static ColumnVector FromValues(TypeId type, const std::vector<Value>& values);

  TypeId type() const { return type_; }
  size_t size() const { return size_; }
  /// True when no cell is NULL (the validity bitmap is elided).
  bool all_valid() const { return valid_.empty(); }
  /// True when the column fell back to per-cell Values (type-defying cell).
  bool is_mixed() const { return mixed_active_; }

  bool IsNull(size_t i) const {
    return !valid_.empty() && ((valid_[i >> 6] >> (i & 63)) & 1) == 0;
  }

  /// \name Typed accessors — valid only for the matching non-mixed type and
  /// a non-NULL cell (cells are placeholder-initialized under NULL).
  /// @{
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  /// @}

  /// Reproduces the exact Value stored at `i` (same TypeId and payload as
  /// the row engine would carry).
  Value ValueAt(size_t i) const;

  void Reserve(size_t n);
  /// Appends a value; a non-NULL value of a type other than type() flips
  /// the column into mixed (per-cell Value) mode.
  void AppendValue(const Value& v);
  /// Appends cell `i` of `src` (same semantics as AppendValue(src.ValueAt)).
  void AppendFrom(const ColumnVector& src, size_t i);

  /// Hash of cell `i`, identical to ColumnVector::ValueAt(i).Hash().
  size_t HashAt(size_t i) const;
  /// Equality with cell `j` of `other` under Value::operator== semantics
  /// (NULL == NULL, int/double coerce).
  bool EqualsAt(size_t i, const ColumnVector& other, size_t j) const;
  /// Three-way comparison under Value::Compare's total order.
  int CompareAt(size_t i, const ColumnVector& other, size_t j) const;

  /// Heap bytes owned by this column (vector capacities, string payloads
  /// past the SSO buffer, validity words).
  size_t ApproxBytes() const;

 private:
  void EnsureValidBits();
  void MarkNull();
  void SwitchToMixed();

  TypeId type_;
  size_t size_ = 0;
  bool mixed_active_ = false;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  std::vector<Value> mixed_;
  // Packed validity bits, LSB-first within each word; empty == all valid.
  std::vector<uint64_t> valid_;
};

using ColumnVectorPtr = std::shared_ptr<const ColumnVector>;
using SelectionPtr = std::shared_ptr<const std::vector<uint32_t>>;

/// \brief Shared immutable columns + selection vector of physical indexes.
///
/// Logical row `i` of the batch lives at physical index Physical(i) of
/// every column; a null selection means the identity over
/// [0, physical_rows). Copying a batch shares columns and selection.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  ColumnBatch(std::vector<ColumnVectorPtr> columns, size_t physical_rows,
              SelectionPtr selection = nullptr)
      : columns_(std::move(columns)),
        physical_rows_(physical_rows),
        selection_(std::move(selection)) {}

  /// Packs rows into typed columns (types from the producing plan schema).
  static ColumnBatch FromRows(const std::vector<Row>& rows,
                              const std::vector<TypeId>& types);

  size_t NumColumns() const { return columns_.size(); }
  /// Logical (selected) row count.
  size_t NumRows() const {
    return selection_ ? selection_->size() : physical_rows_;
  }
  size_t physical_rows() const { return physical_rows_; }
  bool has_selection() const { return selection_ != nullptr; }
  const SelectionPtr& selection() const { return selection_; }

  uint32_t Physical(size_t i) const {
    return selection_ ? (*selection_)[i] : static_cast<uint32_t>(i);
  }

  const ColumnVector& col(size_t c) const { return *columns_[c]; }
  const ColumnVectorPtr& col_ptr(size_t c) const { return columns_[c]; }

  Value ValueAt(size_t row, size_t c) const {
    return columns_[c]->ValueAt(Physical(row));
  }
  Row RowAt(size_t row) const;
  std::vector<Row> ToRows() const;

  /// Hash of logical row `row` across all columns == HashRow(RowAt(row)).
  size_t RowHashAt(size_t row) const;
  bool RowEqualsAt(size_t row, const ColumnBatch& other,
                   size_t other_row) const;

  /// Same columns, new selection of *physical* indexes.
  ColumnBatch WithSelection(SelectionPtr sel) const {
    return ColumnBatch(columns_, physical_rows_, std::move(sel));
  }
  /// Narrows to the given *logical* rows (composes with the current
  /// selection); keeps column data shared.
  ColumnBatch Narrow(const std::vector<uint32_t>& keep_logical) const;

  /// Heap bytes owned via the columns (shared buffers counted once each).
  size_t ApproxBytes() const;

 private:
  std::vector<ColumnVectorPtr> columns_;
  size_t physical_rows_ = 0;
  SelectionPtr selection_;
};

}  // namespace hippo
