#include "db/database.h"

#include <unordered_set>
#include <utility>

#include "common/str_util.h"
#include "expr/binder.h"
#include "expr/evaluator.h"
#include "cqa/envelope.h"
#include "io/csv.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "plan/router.h"
#include "plan/sjud.h"
#include "rewriting/rewriter.h"
#include "sql/parser.h"

namespace hippo {

Status Database::Execute(const std::string& sql) {
  HIPPO_ASSIGN_OR_RETURN(std::vector<sql::Statement> stmts,
                         sql::ParseScript(sql));
  for (sql::Statement& stmt : stmts) {
    if (auto* ct = std::get_if<sql::CreateTableStmt>(&stmt.node)) {
      Schema schema;
      std::unordered_set<std::string> names;
      for (auto& [name, type] : ct->columns) {
        if (!names.insert(name).second) {
          return Status::InvalidArgument("duplicate column name: " + name);
        }
        schema.AddColumn(Column(name, type));
      }
      HIPPO_ASSIGN_OR_RETURN(Table * table,
                             catalog_.CreateTable(ct->name, schema));
      (void)table;
      // PRIMARY KEY / UNIQUE sugar: the key columns functionally determine
      // the rest of the row.
      for (size_t k = 0; k < ct->keys.size(); ++k) {
        sql::FdSpec spec;
        spec.table = ct->name;
        spec.lhs = ct->keys[k];
        for (const auto& [col, type] : ct->columns) {
          (void)type;
          bool in_key = false;
          for (const std::string& key_col : ct->keys[k]) {
            if (EqualsIgnoreCase(key_col, col)) in_key = true;
          }
          if (!in_key) spec.rhs.push_back(col);
        }
        if (spec.rhs.empty()) continue;  // whole-row key: trivial under sets
        HIPPO_ASSIGN_OR_RETURN(
            DenialConstraint dc,
            DenialConstraint::FromFd(
                catalog_, StrFormat("%s_key%zu", ct->name.c_str(), k + 1),
                spec));
        HIPPO_RETURN_NOT_OK(AddConstraint(std::move(dc)));
      }
      // CHECK sugar: a unary denial constraint forbidding rows where the
      // expression is FALSE (NULL passes, as in SQL).
      for (size_t k = 0; k < ct->checks.size(); ++k) {
        std::vector<sql::TableRef> atoms;
        atoms.push_back(sql::TableRef{ct->name, ""});
        HIPPO_ASSIGN_OR_RETURN(
            DenialConstraint dc,
            DenialConstraint::Make(
                catalog_, StrFormat("%s_check%zu", ct->name.c_str(), k + 1),
                std::move(atoms), LogicalExpr::MakeNot(ct->checks[k]->Clone())));
        HIPPO_RETURN_NOT_OK(AddConstraint(std::move(dc)));
      }
      continue;
    }
    if (auto* ins = std::get_if<sql::InsertStmt>(&stmt.node)) {
      // Probe each row on the const view first: validation failures and
      // live duplicates (set-semantics no-ops) must not copy-on-write a
      // snapshot-shared table. Unshare on the first row that changes it.
      HIPPO_ASSIGN_OR_RETURN(const Table* probe,
                             std::as_const(catalog_).GetTable(ins->table));
      uint32_t table_id = probe->id();
      Table* table = nullptr;  // unshared lazily
      for (const std::vector<ExprPtr>& row_exprs : ins->rows) {
        Row row;
        row.reserve(row_exprs.size());
        for (const ExprPtr& e : row_exprs) {
          if (!e->IsBound()) {
            return Status::InvalidArgument(
                "INSERT values must be constant expressions: " +
                e->ToString());
          }
          row.push_back(EvalConst(*e));
        }
        const Table& view = std::as_const(catalog_).table(table_id);
        HIPPO_ASSIGN_OR_RETURN(Row coerced, view.CoerceRow(row));
        if (view.Find(coerced).has_value()) continue;  // live duplicate
        if (table == nullptr) table = &catalog_.MutableTable(table_id);
        HIPPO_ASSIGN_OR_RETURN(auto inserted, table->Insert(coerced));
        if (inserted.second) {
          HIPPO_RETURN_NOT_OK(NoteInsert(inserted.first));
        }
      }
      continue;
    }
    if (auto* del = std::get_if<sql::DeleteStmt>(&stmt.node)) {
      HIPPO_RETURN_NOT_OK(ExecuteDelete(*del));
      continue;
    }
    if (auto* upd = std::get_if<sql::UpdateStmt>(&stmt.node)) {
      HIPPO_RETURN_NOT_OK(ExecuteUpdate(*upd));
      continue;
    }
    if (auto* drop = std::get_if<sql::DropStmt>(&stmt.node)) {
      HIPPO_RETURN_NOT_OK(drop->is_table ? DropTable(drop->name)
                                         : DropConstraint(drop->name));
      continue;
    }
    if (auto* copy = std::get_if<sql::CopyStmt>(&stmt.node)) {
      if (copy->is_import) {
        HIPPO_ASSIGN_OR_RETURN(CsvImportStats imported,
                               ImportCsvFile(this, copy->table, copy->path));
        (void)imported;
      } else {
        HIPPO_ASSIGN_OR_RETURN(ResultSet rs,
                               Query("SELECT * FROM " + copy->table));
        HIPPO_RETURN_NOT_OK(ExportCsvFile(rs, copy->path));
      }
      continue;
    }
    if (auto* cc = std::get_if<sql::CreateConstraintStmt>(&stmt.node)) {
      if (auto* fk = std::get_if<sql::ForeignKeySpec>(&cc->spec)) {
        HIPPO_ASSIGN_OR_RETURN(
            ForeignKeyConstraint constraint,
            ForeignKeyConstraint::Make(catalog_, cc->name, fk->child,
                                       fk->child_cols, fk->parent,
                                       fk->parent_cols));
        HIPPO_RETURN_NOT_OK(AddForeignKey(std::move(constraint)));
        continue;
      }
      HIPPO_ASSIGN_OR_RETURN(DenialConstraint dc,
                             DenialConstraint::FromStatement(catalog_, *cc));
      HIPPO_RETURN_NOT_OK(AddConstraint(std::move(dc)));
      continue;
    }
    return Status::InvalidArgument(
        "Execute() accepts DDL/DML only; use Query() for SELECT");
  }
  return Status::OK();
}

Status Database::InsertRow(const std::string& table_name, Row values) {
  // Validate and probe on the const view: a live duplicate (set-semantics
  // no-op) or a bad row must not copy-on-write a snapshot-shared table.
  HIPPO_ASSIGN_OR_RETURN(const Table* table,
                         std::as_const(catalog_).GetTable(table_name));
  HIPPO_ASSIGN_OR_RETURN(Row coerced, table->CoerceRow(values));
  if (table->Find(coerced).has_value()) return Status::OK();
  HIPPO_ASSIGN_OR_RETURN(
      auto inserted, catalog_.MutableTable(table->id()).Insert(coerced));
  if (inserted.second) {
    HIPPO_RETURN_NOT_OK(NoteInsert(inserted.first));
  }
  return Status::OK();
}

Status Database::DeleteRow(const std::string& table_name, const Row& values) {
  // Validate and probe on the const view: a miss must not copy-on-write a
  // snapshot-shared table (unshare only when a row actually changes).
  HIPPO_ASSIGN_OR_RETURN(const Table* table,
                         std::as_const(catalog_).GetTable(table_name));
  // Coerce to the column types so lookup matches Insert's canonical form.
  if (values.size() != table->schema().NumColumns()) {
    return Status::InvalidArgument(
        StrFormat("DELETE from %s: expected %zu values, got %zu",
                  table_name.c_str(), table->schema().NumColumns(),
                  values.size()));
  }
  Row coerced;
  coerced.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    HIPPO_ASSIGN_OR_RETURN(Value v,
                           values[i].CastTo(table->schema().column(i).type));
    coerced.push_back(std::move(v));
  }
  std::optional<RowId> rid = table->Find(coerced);
  if (!rid.has_value()) return Status::OK();
  catalog_.MutableTable(rid->table).Delete(rid->row);
  return NoteDelete(*rid);
}

Status Database::ExecuteDelete(const sql::DeleteStmt& stmt) {
  // Bind and scan on the const view; unshare (copy-on-write) only when
  // some row actually matched, so a no-op DELETE never clones a
  // snapshot-shared table.
  HIPPO_ASSIGN_OR_RETURN(const Table* table,
                         std::as_const(catalog_).GetTable(stmt.table));
  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    // Bind against the table schema qualified by the table name, so both
    // `col` and `table.col` references resolve.
    Schema scope = table->schema().WithQualifier(table->name());
    ExprBinder binder(scope);
    HIPPO_RETURN_NOT_OK(binder.BindPredicate(where.get()));
  }
  std::vector<uint32_t> matched;
  for (uint32_t i = 0; i < table->NumRows(); ++i) {
    if (!table->IsLive(i)) continue;
    if (where == nullptr || EvalPredicate(*where, table->row(i))) {
      matched.push_back(i);
    }
  }
  if (matched.empty()) return Status::OK();
  uint32_t id = table->id();
  Table& mutable_table = catalog_.MutableTable(id);  // invalidates `table`
  for (uint32_t i : matched) {
    mutable_table.Delete(i);
    HIPPO_RETURN_NOT_OK(NoteDelete(RowId{id, i}));
  }
  return Status::OK();
}

Status Database::ExecuteUpdate(const sql::UpdateStmt& stmt) {
  // Pass 1 runs on the const view; unshare (copy-on-write) only when some
  // row actually matched, so a no-op UPDATE never clones a snapshot-shared
  // table.
  HIPPO_ASSIGN_OR_RETURN(const Table* table,
                         std::as_const(catalog_).GetTable(stmt.table));
  Schema scope = table->schema().WithQualifier(table->name());
  ExprBinder binder(scope);
  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    HIPPO_RETURN_NOT_OK(binder.BindPredicate(where.get()));
  }
  struct Assignment {
    size_t column;
    ExprPtr value;
  };
  std::vector<Assignment> assignments;
  for (const auto& [col, value] : stmt.assignments) {
    HIPPO_ASSIGN_OR_RETURN(size_t idx, scope.ResolveColumn("", col));
    ExprPtr bound = value->Clone();
    HIPPO_RETURN_NOT_OK(binder.Bind(bound.get()));
    assignments.push_back(Assignment{idx, std::move(bound)});
  }
  // Pass 1: collect matches and compute replacement rows against the
  // pre-update image (no Halloween effects).
  std::vector<uint32_t> matched;
  std::vector<Row> replacements;
  for (uint32_t i = 0; i < table->NumRows(); ++i) {
    if (!table->IsLive(i)) continue;
    const Row& row = table->row(i);
    if (where != nullptr && !EvalPredicate(*where, row)) continue;
    Row updated = row;
    for (const Assignment& a : assignments) {
      updated[a.column] = EvalExpr(*a.value, row);
    }
    matched.push_back(i);
    replacements.push_back(std::move(updated));
  }
  if (matched.empty()) return Status::OK();
  // Pass 2: delete originals, then insert replacements (set semantics:
  // updating a row onto an existing one merges them).
  uint32_t id = table->id();
  Table& mutable_table = catalog_.MutableTable(id);  // invalidates `table`
  for (uint32_t i : matched) {
    mutable_table.Delete(i);
    HIPPO_RETURN_NOT_OK(NoteDelete(RowId{id, i}));
  }
  for (Row& r : replacements) {
    HIPPO_ASSIGN_OR_RETURN(auto inserted, mutable_table.Insert(r));
    if (inserted.second) {
      HIPPO_RETURN_NOT_OK(NoteInsert(inserted.first));
    }
  }
  return Status::OK();
}

Status Database::NoteInsert(RowId rid) {
  if (incremental_ != nullptr) return incremental_->OnInsert(rid);
  InvalidateHypergraph();
  return Status::OK();
}

Status Database::NoteDelete(RowId rid) {
  if (incremental_ != nullptr) return incremental_->OnDelete(rid);
  InvalidateHypergraph();
  return Status::OK();
}

Status Database::DropConstraint(const std::string& name) {
  for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
    if (EqualsIgnoreCase(it->name(), name)) {
      constraints_.erase(it);
      InvalidateHypergraph();
      return Status::OK();
    }
  }
  for (auto it = foreign_keys_.begin(); it != foreign_keys_.end(); ++it) {
    if (EqualsIgnoreCase(it->name(), name)) {
      foreign_keys_.erase(it);
      InvalidateHypergraph();
      return Status::OK();
    }
  }
  return Status::NotFound("constraint not found: " + name);
}

Status Database::DropTable(const std::string& name) {
  // Const lookup: resolving the id must not copy-on-write a shared table
  // (the refusal paths below never mutate, and the drop itself replaces
  // the slot without touching the rows).
  HIPPO_ASSIGN_OR_RETURN(const Table* table,
                         std::as_const(catalog_).GetTable(name));
  uint32_t id = table->id();
  for (const DenialConstraint& dc : constraints_) {
    for (const ConstraintAtom& atom : dc.atoms()) {
      if (atom.table_id == id) {
        return Status::NotSupported(
            "table " + name + " is referenced by constraint " + dc.name() +
            "; drop the constraint first");
      }
    }
  }
  for (const ForeignKeyConstraint& fk : foreign_keys_) {
    if (fk.child_table() == id || fk.parent_table() == id) {
      return Status::NotSupported(
          "table " + name + " is referenced by foreign key " + fk.name() +
          "; drop the constraint first");
    }
  }
  HIPPO_RETURN_NOT_OK(catalog_.DropTable(name));
  InvalidateHypergraph();
  return Status::OK();
}

Status Database::EnableIncrementalMaintenance() {
  incremental_enabled_ = true;
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, Hypergraph());
  (void)graph;
  return Status::OK();
}

bool Database::IsFkParent(uint32_t table_id) const {
  for (const ForeignKeyConstraint& fk : foreign_keys_) {
    if (fk.parent_table() == table_id) return true;
  }
  return false;
}

bool Database::HasConstraints(uint32_t table_id) const {
  for (const DenialConstraint& dc : constraints_) {
    for (const ConstraintAtom& atom : dc.atoms()) {
      if (atom.table_id == table_id) return true;
    }
  }
  for (const ForeignKeyConstraint& fk : foreign_keys_) {
    if (fk.child_table() == table_id) return true;
  }
  return false;
}

Status Database::AddConstraint(DenialConstraint constraint) {
  for (const DenialConstraint& existing : constraints_) {
    if (existing.name() == constraint.name()) {
      return Status::AlreadyExists("constraint already exists: " +
                                   constraint.name());
    }
  }
  for (const ConstraintAtom& atom : constraint.atoms()) {
    if (IsFkParent(atom.table_id)) {
      return Status::NotSupported(
          "relation " + atom.table_name +
          " is the parent of a foreign key; the restricted-FK class "
          "requires parent relations to carry no other constraints");
    }
  }
  constraints_.push_back(std::move(constraint));
  InvalidateHypergraph();
  return Status::OK();
}

Status Database::AddForeignKey(ForeignKeyConstraint fk) {
  for (const ForeignKeyConstraint& existing : foreign_keys_) {
    if (existing.name() == fk.name()) {
      return Status::AlreadyExists("constraint already exists: " + fk.name());
    }
  }
  for (const DenialConstraint& existing : constraints_) {
    if (existing.name() == fk.name()) {
      return Status::AlreadyExists("constraint already exists: " + fk.name());
    }
  }
  if (HasConstraints(fk.parent_table())) {
    return Status::NotSupported(
        "foreign key parent relation carries other constraints; outside the "
        "restricted class (its tuples must be immutable across repairs)");
  }
  if (IsFkParent(fk.child_table())) {
    return Status::NotSupported(
        "foreign key child relation is the parent of another foreign key; "
        "outside the restricted class");
  }
  foreign_keys_.push_back(std::move(fk));
  InvalidateHypergraph();
  return Status::OK();
}

Result<PlanNodePtr> Database::PlanParsed(const sql::SelectStmt& stmt) const {
  Planner planner(catalog_);
  return planner.PlanSelect(stmt);
}

Result<PlanNodePtr> Database::Plan(const std::string& select_sql) const {
  HIPPO_ASSIGN_OR_RETURN(sql::Statement stmt,
                         sql::ParseStatement(select_sql));
  auto* sel = std::get_if<sql::SelectStmt>(&stmt.node);
  if (sel == nullptr) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  return PlanParsed(*sel);
}

Result<std::string> Database::Explain(const std::string& select_sql) const {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  std::string out = "-- plan --\n" + plan->ToString();
  if (optimizer_enabled_) {
    PlanNodePtr optimized = OptimizePlan(*plan);
    if (optimized->ToString() != plan->ToString()) {
      out += "-- optimized (plain evaluation) --\n" + optimized->ToString();
    }
  }
  Status sjud = CheckSjudSupported(*plan);
  if (sjud.ok()) {
    PlanNodePtr env = cqa::BuildEnvelope(*plan);
    out += "-- envelope (candidates) --\n" + env->ToString();
  } else {
    out += "-- not in the SJUD class: " + sjud.message() + "\n";
  }
  rewriting::QueryRewriter rewriter(catalog_, constraints_, foreign_keys_);
  auto rewritten = rewriter.Rewrite(*plan);
  if (rewritten.ok()) {
    out += "-- rewriting baseline --\n" + rewritten.value()->ToString();
  } else {
    out += "-- rewriting inapplicable: " + rewritten.status().message() +
           "\n";
  }
  {
    // Route classification against the cached hypergraph (if any). A cold
    // cache is classified conservatively: the conflict-free route needs
    // edge information and the KW completeness gate needs the graph, so
    // such queries report the prover route until detection has run.
    const ConflictHypergraph* graph = nullptr;
    {
      std::lock_guard<std::mutex> lock(hypergraph_mu_);
      if (hypergraph_.has_value()) graph = &hypergraph_.value();
    }
    auto route = ClassifyRoute(*plan, catalog_, &constraints_, &foreign_keys_,
                               graph, RouteMode::kAuto);
    if (route.ok()) {
      out += std::string("-- route --\n") + RouteKindName(route.value().kind) +
             ": " + route.value().reason;
      if (graph == nullptr) out += " [hypergraph not yet built]";
      out += "\n";
    } else {
      out += "-- route unavailable: " + route.status().message() + "\n";
    }
  }
  return out;
}

Result<std::string> Database::ExplainAnalyze(const std::string& select_sql,
                                             const cqa::HippoOptions& options,
                                             cqa::HippoStats* stats) {
  obs::TraceSpan root("query");
  cqa::HippoOptions traced = options;
  traced.trace = &root;
  HIPPO_ASSIGN_OR_RETURN(ResultSet result,
                         ConsistentAnswers(select_sql, traced, stats));
  root.SetAttr("answers", static_cast<int64_t>(result.rows.size()));
  root.End();
  return "-- explain analyze --\n" + root.Render();
}

Result<ResultSet> Database::Query(const std::string& select_sql) const {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  if (optimizer_enabled_) plan = OptimizePlan(*plan);
  ExecContext ctx{&catalog_, nullptr};
  return ::hippo::Execute(*plan, ctx);
}

Result<const ConflictHypergraph*> Database::Hypergraph() {
  return HypergraphWith(detect_options_);
}

Result<const ConflictHypergraph*> Database::HypergraphWith(
    const DetectOptions& options, bool* reused_cache) {
  // Concurrent readers may all arrive on a cold cache; the first one to
  // take the lock builds, the rest reuse the published graph. Detection
  // itself runs under the lock — it already parallelizes internally via
  // options.num_threads, so stacking racing builds on top would only
  // duplicate work.
  std::lock_guard<std::mutex> lock(hypergraph_mu_);
  if (reused_cache != nullptr) *reused_cache = hypergraph_.has_value();
  if (!hypergraph_.has_value()) {
    ConflictDetector detector(catalog_, options);
    HIPPO_ASSIGN_OR_RETURN(ConflictHypergraph graph,
                           detector.DetectAll(constraints_, foreign_keys_));
    detect_stats_ = detector.stats();
    hypergraph_ = std::move(graph);
    ++hypergraph_epoch_;
  }
  if (incremental_enabled_ && incremental_ == nullptr) {
    HIPPO_ASSIGN_OR_RETURN(
        incremental_,
        IncrementalDetector::Make(catalog_, constraints_, foreign_keys_,
                                  &hypergraph_.value()));
  }
  return &hypergraph_.value();
}

Result<ConflictHypergraph> Database::ShareHypergraph() {
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, Hypergraph());
  (void)graph;
  std::lock_guard<std::mutex> lock(hypergraph_mu_);
  return hypergraph_->Share();
}

uint64_t Database::hypergraph_epoch() const {
  std::lock_guard<std::mutex> lock(hypergraph_mu_);
  return hypergraph_epoch_;
}

void Database::InvalidateHypergraph() {
  std::lock_guard<std::mutex> lock(hypergraph_mu_);
  incremental_.reset();
  hypergraph_.reset();
}

bool Database::hypergraph_current() const {
  std::lock_guard<std::mutex> lock(hypergraph_mu_);
  return hypergraph_.has_value();
}

std::unique_ptr<Database> Database::ForkShared() {
  auto fork = std::make_unique<Database>();
  fork->catalog_ = catalog_.Share();
  fork->constraints_.reserve(constraints_.size());
  for (const DenialConstraint& dc : constraints_) {
    fork->constraints_.push_back(dc.Clone());
  }
  fork->foreign_keys_ = foreign_keys_;
  fork->detect_options_ = detect_options_;
  fork->optimizer_enabled_ = optimizer_enabled_;
  // No hypergraph and no maintainer: the fork's first
  // EnableIncrementalMaintenance runs a fresh (typically parallel)
  // detection over its own state — that is the async round's background
  // re-detect.
  return fork;
}

Result<ResultSet> Database::QueryOverCore(const std::string& select_sql) {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, Hypergraph());
  RepairEnumerator repairs(catalog_, *graph);
  RowMask mask = repairs.CoreMask();
  if (optimizer_enabled_) plan = OptimizePlan(*plan);
  ExecContext ctx{&catalog_, &mask};
  return ::hippo::Execute(*plan, ctx);
}

Result<ResultSet> Database::ConsistentAnswers(const std::string& select_sql,
                                              const cqa::HippoOptions& options,
                                              cqa::HippoStats* stats) {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  bool reused_cache = false;
  HIPPO_ASSIGN_OR_RETURN(
      const ConflictHypergraph* graph,
      HypergraphWith(options.detect.value_or(detect_options_),
                     &reused_cache));
  if (stats != nullptr && options.detect.has_value() && reused_cache) {
    // The caller asked for specific detection options but a cached graph
    // was reused, so they had no effect; surface that instead of letting a
    // mismatched DetectOptions masquerade as a detection change.
    ++stats->detect_options_ignored;
  }
  cqa::HippoEngine engine(catalog_, *graph, &constraints_, &foreign_keys_);
  return engine.ConsistentAnswers(*plan, options, stats);
}

Result<ResultSet> Database::ConsistentAnswersByRewriting(
    const std::string& select_sql) {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  rewriting::QueryRewriter rewriter(catalog_, constraints_, foreign_keys_);
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr rewritten, rewriter.Rewrite(*plan));
  if (optimizer_enabled_) rewritten = OptimizePlan(*rewritten);
  ExecContext ctx{&catalog_, nullptr};
  return ::hippo::Execute(*rewritten, ctx);
}

Result<ResultSet> Database::ConsistentAnswersAllRepairs(
    const std::string& select_sql, size_t repair_limit) {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(select_sql));
  if (optimizer_enabled_) plan = OptimizePlan(*plan);
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, Hypergraph());
  RepairEnumerator repairs(catalog_, *graph);
  HIPPO_ASSIGN_OR_RETURN(std::vector<RowMask> masks,
                         repairs.EnumerateMasks(repair_limit));
  HIPPO_CHECK_MSG(!masks.empty(), "there is always at least one repair");

  // Intersect the query results over all repairs.
  ResultSet answers;
  answers.schema = plan->schema();
  bool first = true;
  std::unordered_set<Row, RowHasher, RowEq> survivors;
  for (const RowMask& mask : masks) {
    ExecContext ctx{&catalog_, &mask};
    HIPPO_ASSIGN_OR_RETURN(ResultSet rs, ::hippo::Execute(*plan, ctx));
    if (first) {
      survivors.insert(rs.rows.begin(), rs.rows.end());
      first = false;
      continue;
    }
    std::unordered_set<Row, RowHasher, RowEq> present(rs.rows.begin(),
                                                      rs.rows.end());
    for (auto it = survivors.begin(); it != survivors.end();) {
      if (!present.count(*it)) {
        it = survivors.erase(it);
      } else {
        ++it;
      }
    }
    if (survivors.empty()) break;
  }
  answers.rows.assign(survivors.begin(), survivors.end());
  answers.SortRows();  // deterministic output
  return answers;
}

Result<cqa::AggRange> Database::RangeConsistentAggregate(
    const std::string& table, cqa::AggFn fn, const std::string& column,
    cqa::AggStats* stats) {
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, Hypergraph());
  cqa::RangeAggregator aggregator(catalog_, *graph);
  return aggregator.Range(table, fn, column, stats);
}

Result<std::vector<cqa::GroupRange>> Database::GroupedRangeConsistentAggregate(
    const std::string& table, cqa::AggFn fn, const std::string& column,
    const std::vector<std::string>& group_columns, cqa::AggStats* stats) {
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, Hypergraph());
  cqa::RangeAggregator aggregator(catalog_, *graph);
  return aggregator.GroupedRange(table, fn, column, group_columns, stats);
}

Result<size_t> Database::CountRepairs(size_t limit) {
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, Hypergraph());
  RepairEnumerator repairs(catalog_, *graph);
  return repairs.CountRepairs(limit);
}

Result<bool> Database::IsConsistent() {
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, Hypergraph());
  return graph->NumEdges() == 0;
}

}  // namespace hippo
