// Human-readable conflict report over a Database: the inspection side of
// the demo ("demonstrate that ... we can extract more information from an
// inconsistent database"). Backs the `hippo_check` command-line tool.
#pragma once

#include <string>

#include "common/status.h"

namespace hippo {

class Database;

struct ConflictReportOptions {
  /// Maximum example violations rendered per constraint.
  size_t max_examples = 3;
  /// Bound on repair counting (counting is exponential; past the bound the
  /// report says "more than <bound>").
  size_t repair_limit = 10000;
};

/// Renders: per-constraint violation counts with example witnesses (tuple
/// values, not just RowIds), hypergraph statistics, the consistency
/// verdict, and the number of repairs. Runs conflict detection if needed.
Result<std::string> GenerateConflictReport(
    Database* db, const ConflictReportOptions& options = {});

}  // namespace hippo
