#include "db/conflict_report.h"

#include <vector>

#include "common/str_util.h"
#include "db/database.h"

namespace hippo {

namespace {

std::string RenderTuple(const Catalog& catalog, RowId rid) {
  const Table& table = catalog.table(rid.table);
  std::string out = table.name() + "(";
  const Row& row = table.row(rid.row);
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace

Result<std::string> GenerateConflictReport(
    Database* db, const ConflictReportOptions& options) {
  HIPPO_ASSIGN_OR_RETURN(const ConflictHypergraph* graph, db->Hypergraph());

  // Constraint display names in DetectAll's index order: denial
  // constraints first, then foreign keys.
  std::vector<std::string> names;
  for (const DenialConstraint& dc : db->constraints()) {
    names.push_back(dc.ToString());
  }
  for (const ForeignKeyConstraint& fk : db->foreign_keys()) {
    names.push_back(fk.ToString());
  }

  // Per-constraint edge counts and examples.
  std::vector<size_t> counts(names.size(), 0);
  std::vector<std::vector<ConflictHypergraph::EdgeId>> examples(names.size());
  for (ConflictHypergraph::EdgeId e = 0; e < graph->NumEdgeSlots(); ++e) {
    if (!graph->EdgeAlive(e)) continue;
    uint32_t c = graph->edge_constraint(e);
    if (c >= counts.size()) {
      return Status::Internal("edge with out-of-range constraint index");
    }
    ++counts[c];
    if (examples[c].size() < options.max_examples) {
      examples[c].push_back(e);
    }
  }

  std::string out;
  out += "== conflict report ==\n";
  out += StrFormat("tables: %zu   live tuples: %zu\n",
                   db->catalog().TableNames().size(),
                   db->catalog().TotalRows());
  out += graph->StatsString() + "\n\n";

  for (size_t c = 0; c < names.size(); ++c) {
    out += StrFormat("[%zu] %s\n", c, names[c].c_str());
    out += StrFormat("     violations: %zu\n", counts[c]);
    for (ConflictHypergraph::EdgeId e : examples[c]) {
      out += "     e.g. {";
      const std::vector<RowId>& edge = graph->edge(e);
      for (size_t i = 0; i < edge.size(); ++i) {
        if (i > 0) out += " , ";
        out += RenderTuple(db->catalog(), edge[i]);
      }
      out += "}\n";
    }
  }
  out += "\n";

  if (graph->NumEdges() == 0) {
    out += "verdict: CONSISTENT (every constraint satisfied)\n";
    return out;
  }
  out += "verdict: INCONSISTENT\n";
  auto repairs = db->CountRepairs(options.repair_limit);
  if (repairs.ok()) {
    out += StrFormat("repairs: %zu\n", repairs.value());
  } else {
    out += StrFormat("repairs: more than %zu\n", options.repair_limit);
  }
  out +=
      "consistent query answering remains available; conflicting tuples are "
      "adjudicated per query by the prover.\n";
  return out;
}

}  // namespace hippo
