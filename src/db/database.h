// hippo::Database — the public facade of the library.
//
// Owns the catalog, the declared integrity constraints, and a lazily
// maintained conflict hypergraph; exposes SQL execution plus the four ways
// of answering a query over an inconsistent database that the paper's
// demonstration contrasts:
//
//   * Query()                      — ordinary evaluation, ignoring conflicts;
//   * QueryOverCore()              — evaluation after removing every
//                                    conflicting tuple (traditional cleaning);
//   * ConsistentAnswers()          — Hippo (conflict hypergraph + prover);
//   * ConsistentAnswersByRewriting() — the ABC query-rewriting baseline;
//   * ConsistentAnswersAllRepairs()  — exact evaluation over every repair
//                                    (exponential; ground truth).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "constraints/constraint.h"
#include "constraints/foreign_key.h"
#include "cqa/aggregates.h"
#include "cqa/engine.h"
#include "detect/detector.h"
#include "detect/incremental.h"
#include "exec/executor.h"
#include "hypergraph/hypergraph.h"
#include "plan/logical_plan.h"
#include "repairs/repair_enumerator.h"

namespace hippo {

class Database {
 public:
  Database() = default;
  HIPPO_DISALLOW_COPY(Database);

  // --- DDL / DML ------------------------------------------------------------

  /// Executes a script of ';'-separated CREATE TABLE / INSERT / DELETE /
  /// UPDATE / CREATE CONSTRAINT statements.
  Status Execute(const std::string& sql);

  /// Programmatic row insertion (values are coerced to the column types).
  Status InsertRow(const std::string& table, Row values);

  /// Programmatic row deletion by exact value (no-op when absent).
  Status DeleteRow(const std::string& table, const Row& values);

  /// Registers an already-built constraint. Rejected if one of its atom
  /// relations is the parent of a foreign key (restricted-FK invariant).
  Status AddConstraint(DenialConstraint constraint);

  /// Registers a restricted foreign key. The parent relation must carry no
  /// other constraints (denial atoms, FK child role) — that is what keeps
  /// repairs representable by the conflict hypergraph.
  Status AddForeignKey(ForeignKeyConstraint fk);

  /// Removes a denial constraint or foreign key by name (NotFound when
  /// absent). Formerly conflicting tuples may become consistent answers.
  Status DropConstraint(const std::string& name);

  /// Drops a table. Refused (NotSupported) while any constraint or foreign
  /// key references it — drop those first.
  Status DropTable(const std::string& name);

  // --- querying --------------------------------------------------------------

  /// Plans (and binds) a SELECT statement.
  Result<PlanNodePtr> Plan(const std::string& select_sql) const;

  /// Renders the bound plan, its envelope, and (when applicable) the
  /// rewritten plan of a SELECT statement — the EXPLAIN facility.
  Result<std::string> Explain(const std::string& select_sql) const;

  /// EXPLAIN ANALYZE: Explain's execute-and-annotate mode. Runs the query
  /// for real through ConsistentAnswers with a per-query trace attached
  /// and renders the executed tree — route taken, then one line per span
  /// (engine phases and executor operators) with wall time and output
  /// cardinality. Answers are identical to an untraced run; `stats`
  /// receives the same HippoStats ConsistentAnswers would produce.
  Result<std::string> ExplainAnalyze(
      const std::string& select_sql,
      const cqa::HippoOptions& options = cqa::HippoOptions(),
      cqa::HippoStats* stats = nullptr);

  /// Plain evaluation over the (possibly inconsistent) instance.
  Result<ResultSet> Query(const std::string& select_sql) const;

  /// Evaluation over the "core": every conflicting tuple removed.
  Result<ResultSet> QueryOverCore(const std::string& select_sql);

  /// Consistent answers via Hippo.
  Result<ResultSet> ConsistentAnswers(
      const std::string& select_sql,
      const cqa::HippoOptions& options = cqa::HippoOptions(),
      cqa::HippoStats* stats = nullptr);

  /// Consistent answers via the query-rewriting baseline (NotSupported for
  /// queries/constraints outside its class).
  Result<ResultSet> ConsistentAnswersByRewriting(
      const std::string& select_sql);

  /// Exact consistent answers by evaluating over every repair. Errors with
  /// NotSupported when more than `repair_limit` repairs exist.
  Result<ResultSet> ConsistentAnswersAllRepairs(const std::string& select_sql,
                                                size_t repair_limit = 100000);

  /// Range-consistent answer to a scalar aggregate: the [glb, lub] interval
  /// of `fn` over `table.column` across all repairs (closed form under the
  /// clique-partition property, e.g. a single FD; exact enumeration
  /// otherwise). `column` is ignored for COUNT.
  Result<cqa::AggRange> RangeConsistentAggregate(
      const std::string& table, cqa::AggFn fn, const std::string& column = "",
      cqa::AggStats* stats = nullptr);

  /// Grouped variant: the [glb, lub] interval of `fn` per value of
  /// `group_columns` (extension of the demo's reference [3]; closed form
  /// when no conflict clique straddles two groups, e.g. when grouping by a
  /// subset of the FD determinant).
  Result<std::vector<cqa::GroupRange>> GroupedRangeConsistentAggregate(
      const std::string& table, cqa::AggFn fn, const std::string& column,
      const std::vector<std::string>& group_columns,
      cqa::AggStats* stats = nullptr);

  // --- inspection -------------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  const std::vector<DenialConstraint>& constraints() const {
    return constraints_;
  }
  const std::vector<ForeignKeyConstraint>& foreign_keys() const {
    return foreign_keys_;
  }

  /// The conflict hypergraph (runs Conflict Detection on first use; cached
  /// until the next DML/constraint change).
  ///
  /// Thread safety: the first-use build is serialized internally, so any
  /// number of reader threads may call Hypergraph() — and the query paths
  /// that use it (ConsistentAnswers, QueryOverCore, IsConsistent, ...) —
  /// concurrently on a cold cache. Writers (DML, constraint DDL,
  /// SetDetectOptions) still require exclusion from all readers: they
  /// invalidate or mutate the graph the readers' pointers refer to. The
  /// service::QueryService layer provides that exclusion via epoch-versioned
  /// snapshots.
  Result<const ConflictHypergraph*> Hypergraph();

  /// As Hypergraph(), but detecting with explicit options when the cache is
  /// cold (a cached graph is returned unchanged). This is how
  /// HippoOptions::detect reaches the detector. When `reused_cache` is
  /// non-null it is set to true iff a previously built graph was returned —
  /// i.e. `options` had no effect on detection.
  Result<const ConflictHypergraph*> HypergraphWith(
      const DetectOptions& options, bool* reused_cache = nullptr);

  /// A structurally shared copy-on-write copy of the hypergraph
  /// (ConflictHypergraph::Share), building it first when the cache is cold.
  /// Used by service::Snapshot to freeze an epoch. A writer-path operation:
  /// requires exclusion from concurrent readers and writers, like DML.
  Result<ConflictHypergraph> ShareHypergraph();

  /// Generation counter of the hypergraph cache: incremented every time a
  /// freshly detected graph is published (first use and every rebuild after
  /// an invalidation). Incremental in-place maintenance does not advance
  /// the epoch — the graph object stays current. Starts at 0 (no graph
  /// built yet).
  uint64_t hypergraph_epoch() const;

  /// Number of repairs of the current instance (exponential; bounded).
  Result<size_t> CountRepairs(size_t limit = 100000);

  /// True when the instance satisfies all constraints.
  Result<bool> IsConsistent();

  /// Forces re-detection on next use (called automatically by DML when
  /// incremental maintenance is off, and by constraint changes always).
  /// A writer-path operation: requires exclusion from concurrent readers.
  void InvalidateHypergraph();

  /// True when a built conflict hypergraph is cached — i.e. no
  /// invalidation is pending and reads will not trigger a re-detection.
  /// The commit pipeline uses this to notice that a statement it
  /// classified as plain DML actually invalidated the graph (hidden DDL)
  /// and to restore the maintained-graph invariant before publishing.
  bool hypergraph_current() const;

  /// A structurally shared copy-on-write fork of this database: every
  /// table is pointer-shared via Catalog::Share (either side's next write
  /// clones only the touched table), constraints are deep-copied, foreign
  /// keys and options are copied. The fork starts with no hypergraph and
  /// incremental maintenance off — it is a private lineage for the
  /// service's asynchronous bulk/DDL commit rounds: apply the bulk there,
  /// re-detect in the background, replay overtaking small commits, then
  /// swap the fork in as the new master (a pointer swap).
  ///
  /// A writer-path operation on *this* database too (Share marks the
  /// tables shared): requires the same exclusion as DML.
  std::unique_ptr<Database> ForkShared();

  /// Switches to incremental maintenance: the conflict hypergraph is kept
  /// up to date across INSERT/DELETE/UPDATE instead of being recomputed
  /// from scratch on the next read (the long-running-activity scenario of
  /// the paper's introduction). Computes the hypergraph eagerly.
  Status EnableIncrementalMaintenance();

  /// Back to recompute-on-demand (keeps the current hypergraph).
  void DisableIncrementalMaintenance() {
    incremental_enabled_ = false;
    incremental_.reset();
  }

  bool incremental_maintenance_enabled() const {
    return incremental_enabled_;
  }

  /// Stats from the incremental maintainer (zeros when disabled).
  IncrementalStats incremental_stats() const {
    return incremental_ != nullptr ? incremental_->stats()
                                   : IncrementalStats();
  }

  /// Detection options (e.g. disabling the FD fast path for ablations).
  void SetDetectOptions(DetectOptions options) {
    detect_options_ = options;
    InvalidateHypergraph();
  }

  /// Toggles the algebraic plan optimizer (filter pushdown, product→join)
  /// for the plain evaluation paths: Query, QueryOverCore, and the
  /// rewriting baseline. Hippo's envelope pipeline is structure-sensitive
  /// and is never rewritten. On by default; the A3 ablation bench flips it.
  void set_optimizer_enabled(bool enabled) { optimizer_enabled_ = enabled; }
  bool optimizer_enabled() const { return optimizer_enabled_; }

  /// Stats from the last detection run.
  const DetectStats& detect_stats() const { return detect_stats_; }

 private:
  Result<PlanNodePtr> PlanParsed(const sql::SelectStmt& stmt) const;

  /// Routes one applied insert/delete to the incremental maintainer when
  /// active, otherwise invalidates the cached hypergraph.
  Status NoteInsert(RowId rid);
  Status NoteDelete(RowId rid);

  Status ExecuteDelete(const sql::DeleteStmt& stmt);
  Status ExecuteUpdate(const sql::UpdateStmt& stmt);

  /// True if `table_id` appears as the parent of a registered foreign key.
  bool IsFkParent(uint32_t table_id) const;
  /// True if `table_id` carries any constraint (denial atom or FK child).
  bool HasConstraints(uint32_t table_id) const;

  Catalog catalog_;
  std::vector<DenialConstraint> constraints_;
  std::vector<ForeignKeyConstraint> foreign_keys_;
  /// Serializes the lazy hypergraph build (and epoch/invalidation updates)
  /// so concurrent readers hitting a cold cache race neither on the
  /// optional's engagement nor on detect_stats_.
  mutable std::mutex hypergraph_mu_;
  std::optional<ConflictHypergraph> hypergraph_;
  uint64_t hypergraph_epoch_ = 0;
  DetectOptions detect_options_;
  DetectStats detect_stats_;
  bool incremental_enabled_ = false;
  std::unique_ptr<IncrementalDetector> incremental_;
  bool optimizer_enabled_ = true;
};

}  // namespace hippo
