#include "hypergraph/hypergraph.h"

#include <algorithm>

#include "common/str_util.h"

namespace hippo {

namespace {

std::string CanonicalKey(const std::vector<RowId>& sorted_vertices) {
  std::string key;
  key.reserve(sorted_vertices.size() * sizeof(uint64_t));
  for (const RowId& v : sorted_vertices) {
    uint64_t packed = v.Pack();
    key.append(reinterpret_cast<const char*>(&packed), sizeof(packed));
  }
  return key;
}

}  // namespace

void EdgeBuffer::Add(std::vector<RowId> vertices, uint32_t constraint_index) {
  HIPPO_CHECK_MSG(!vertices.empty(), "hyperedge needs at least one vertex");
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  entries_.push_back(StagedEdge{std::move(vertices), constraint_index});
}

// --- structural sharing ----------------------------------------------------

ConflictHypergraph ConflictHypergraph::Share() {
  chunk_shared_.assign(chunks_.size(), true);
  incident_shared_.fill(true);
  canonical_shared_.fill(true);
  ConflictHypergraph copy;
  copy.chunks_ = chunks_;
  copy.incident_ = incident_;
  copy.canonical_ = canonical_;
  copy.chunk_shared_ = chunk_shared_;
  copy.incident_shared_ = incident_shared_;
  copy.canonical_shared_ = canonical_shared_;
  copy.num_edge_slots_ = num_edge_slots_;
  copy.num_live_edges_ = num_live_edges_;
  copy.num_conflicting_ = num_conflicting_;
  return copy;
}

ConflictHypergraph ConflictHypergraph::DeepCopy() const {
  ConflictHypergraph copy;
  copy.chunks_.reserve(chunks_.size());
  for (const auto& chunk : chunks_) {
    copy.chunks_.push_back(std::make_shared<EdgeChunk>(*chunk));
  }
  copy.chunk_shared_.assign(copy.chunks_.size(), false);
  for (size_t s = 0; s < kIncidentShards; ++s) {
    if (incident_[s] != nullptr) {
      copy.incident_[s] = std::make_shared<IncidentShard>(*incident_[s]);
    }
  }
  for (size_t s = 0; s < kCanonicalShards; ++s) {
    if (canonical_[s] != nullptr) {
      copy.canonical_[s] = std::make_shared<CanonicalShard>(*canonical_[s]);
    }
  }
  copy.num_edge_slots_ = num_edge_slots_;
  copy.num_live_edges_ = num_live_edges_;
  copy.num_conflicting_ = num_conflicting_;
  return copy;
}

// --- copy-on-write partition accessors -------------------------------------

ConflictHypergraph::EdgeChunk* ConflictHypergraph::MutableChunk(size_t ci) {
  if (chunk_shared_[ci]) {
    chunks_[ci] = std::make_shared<EdgeChunk>(*chunks_[ci]);
    chunk_shared_[ci] = false;
  }
  return chunks_[ci].get();
}

ConflictHypergraph::IncidentShard* ConflictHypergraph::MutableIncidentShard(
    size_t si) {
  if (incident_[si] == nullptr) {
    incident_[si] = std::make_shared<IncidentShard>();
  } else if (incident_shared_[si]) {
    incident_[si] = std::make_shared<IncidentShard>(*incident_[si]);
  }
  incident_shared_[si] = false;
  return incident_[si].get();
}

ConflictHypergraph::CanonicalShard* ConflictHypergraph::MutableCanonicalShard(
    size_t si) {
  if (canonical_[si] == nullptr) {
    canonical_[si] = std::make_shared<CanonicalShard>();
  } else if (canonical_shared_[si]) {
    canonical_[si] = std::make_shared<CanonicalShard>(*canonical_[si]);
  }
  canonical_shared_[si] = false;
  return canonical_[si].get();
}

void ConflictHypergraph::AddIncident(RowId v, EdgeId e) {
  IncidentShard* shard = MutableIncidentShard(IncidentShardOf(v));
  auto [it, fresh] = shard->lists.try_emplace(v);
  if (fresh) ++num_conflicting_;
  it->second.push_back(e);
}

void ConflictHypergraph::RemoveIncident(RowId v, EdgeId e) {
  size_t si = IncidentShardOf(v);
  const IncidentShard* probe = incident_[si].get();
  if (probe == nullptr) return;
  auto hit = probe->lists.find(v);
  if (hit == probe->lists.end()) return;
  IncidentShard* shard = MutableIncidentShard(si);
  auto it = shard->lists.find(v);
  auto& list = it->second;
  list.erase(std::remove(list.begin(), list.end(), e), list.end());
  if (list.empty()) {
    shard->lists.erase(it);
    --num_conflicting_;
  }
}

// --- mutation --------------------------------------------------------------

size_t ConflictHypergraph::BulkLoad(std::vector<EdgeBuffer> buffers) {
  size_t total = 0;
  for (const EdgeBuffer& b : buffers) total += b.NumEntries();
  std::vector<EdgeBuffer::StagedEdge> staged;
  staged.reserve(total);
  for (EdgeBuffer& b : buffers) {
    for (EdgeBuffer::StagedEdge& e : b.mutable_entries()) {
      staged.push_back(std::move(e));
    }
  }
  std::sort(staged.begin(), staged.end());
  for (EdgeBuffer::StagedEdge& e : staged) {
    AddEdge(std::move(e.vertices), e.constraint_index);
  }
  return total;
}

ConflictHypergraph::EdgeId ConflictHypergraph::AddEdge(
    std::vector<RowId> vertices, uint32_t constraint_index) {
  HIPPO_CHECK_MSG(!vertices.empty(), "hyperedge needs at least one vertex");
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  std::string key = CanonicalKey(vertices);
  size_t csi = CanonicalShardOf(key);
  if (canonical_[csi] != nullptr) {
    auto it = canonical_[csi]->ids.find(key);
    if (it != canonical_[csi]->ids.end()) {
      EdgeId id = it->second;
      size_t ci = id >> kChunkShift;
      size_t slot = id & kChunkMask;
      if (!chunks_[ci]->alive[slot]) {
        // Revive the tombstoned slot: same vertex set, same edge id.
        EdgeChunk* chunk = MutableChunk(ci);
        chunk->alive[slot] = true;
        chunk->constraint[slot] = constraint_index;
        ++num_live_edges_;
        for (const RowId& v : chunk->vertices[slot]) AddIncident(v, id);
      } else if (constraint_index < chunks_[ci]->constraint[slot]) {
        // Live merge: provenance is the first constraint in detection order
        // that produces this vertex set, i.e. the smallest index. Detection
        // adds edges in index order so this only fires for incremental
        // maintenance, where a lower-indexed producer can appear later.
        MutableChunk(ci)->constraint[slot] = constraint_index;
      }
      return id;
    }
  }

  EdgeId id = static_cast<EdgeId>(num_edge_slots_++);
  size_t ci = id >> kChunkShift;
  if (ci == chunks_.size()) {
    chunks_.push_back(std::make_shared<EdgeChunk>());
    chunk_shared_.push_back(false);
  }
  for (const RowId& v : vertices) AddIncident(v, id);
  EdgeChunk* chunk = MutableChunk(ci);
  chunk->vertices.push_back(std::move(vertices));
  chunk->constraint.push_back(constraint_index);
  chunk->alive.push_back(true);
  ++num_live_edges_;
  MutableCanonicalShard(csi)->ids.emplace(std::move(key), id);
  return id;
}

void ConflictHypergraph::RemoveEdge(EdgeId e) {
  if (e >= num_edge_slots_) return;
  size_t ci = e >> kChunkShift;
  size_t slot = e & kChunkMask;
  if (!chunks_[ci]->alive[slot]) return;
  EdgeChunk* chunk = MutableChunk(ci);
  chunk->alive[slot] = false;
  --num_live_edges_;
  for (const RowId& v : chunk->vertices[slot]) RemoveIncident(v, e);
}

size_t ConflictHypergraph::RemoveIncidentEdges(RowId v) {
  // RemoveEdge mutates the incident shard; work off a copy.
  std::vector<EdgeId> edges = IncidentEdges(v);
  for (EdgeId e : edges) RemoveEdge(e);
  return edges.size();
}

// --- read paths ------------------------------------------------------------

const std::vector<ConflictHypergraph::EdgeId>&
ConflictHypergraph::IncidentEdges(RowId v) const {
  static const std::vector<EdgeId> kEmpty;
  const IncidentShard* shard = incident_[IncidentShardOf(v)].get();
  if (shard == nullptr) return kEmpty;
  auto it = shard->lists.find(v);
  return it == shard->lists.end() ? kEmpty : it->second;
}

std::vector<RowId> ConflictHypergraph::ConflictingVertices() const {
  std::vector<RowId> out;
  out.reserve(num_conflicting_);
  for (const auto& shard : incident_) {
    if (shard == nullptr) continue;
    for (const auto& [v, _] : shard->lists) out.push_back(v);
  }
  return out;
}

bool ConflictHypergraph::EdgeInside(EdgeId e, const VertexSet& set) const {
  for (const RowId& v : edge(e)) {
    if (!set.count(v)) return false;
  }
  return true;
}

bool ConflictHypergraph::ContainsFullEdge(const VertexSet& set) const {
  std::unordered_set<EdgeId> checked;
  for (const RowId& v : set) {
    for (EdgeId e : IncidentEdges(v)) {
      if (!checked.insert(e).second) continue;
      if (EdgeInside(e, set)) return true;
    }
  }
  return false;
}

size_t ConflictHypergraph::MaxDegree() const {
  size_t max_deg = 0;
  for (const auto& shard : incident_) {
    if (shard == nullptr) continue;
    for (const auto& [_, edges] : shard->lists) {
      max_deg = std::max(max_deg, edges.size());
    }
  }
  return max_deg;
}

std::string ConflictHypergraph::StatsString() const {
  return StrFormat("hypergraph: %zu edges, %zu conflicting tuples, max degree %zu",
                   NumEdges(), NumConflictingVertices(), MaxDegree());
}

std::string ConflictHypergraph::ToDot(size_t max_edges) const {
  // Hyperedges of arity > 2 are rendered as a small square junction node
  // connected to each member; binary edges as plain edges. Colours cycle by
  // constraint index.
  static const char* kColors[] = {"crimson", "dodgerblue3", "forestgreen",
                                  "darkorange2", "purple3", "goldenrod3"};
  std::string out = "graph conflicts {\n  node [shape=ellipse];\n";
  size_t rendered = 0;
  for (EdgeId e = 0; e < num_edge_slots_ && rendered < max_edges; ++e) {
    if (!EdgeAlive(e)) continue;
    ++rendered;
    const char* color =
        kColors[edge_constraint(e) % (sizeof(kColors) / sizeof(kColors[0]))];
    const std::vector<RowId>& vs = edge(e);
    if (vs.size() == 1) {
      out += StrFormat("  \"%s\" [color=%s, penwidth=2];\n",
                       vs[0].ToString().c_str(), color);
    } else if (vs.size() == 2) {
      out += StrFormat("  \"%s\" -- \"%s\" [color=%s];\n",
                       vs[0].ToString().c_str(), vs[1].ToString().c_str(),
                       color);
    } else {
      std::string junction = StrFormat("e%u", e);
      out += StrFormat(
          "  \"%s\" [shape=point, color=%s];\n", junction.c_str(), color);
      for (const RowId& v : vs) {
        out += StrFormat("  \"%s\" -- \"%s\" [color=%s];\n", junction.c_str(),
                         v.ToString().c_str(), color);
      }
    }
  }
  if (rendered < NumEdges()) {
    out += StrFormat("  label=\"%zu of %zu edges shown\";\n", rendered,
                     NumEdges());
  }
  out += "}\n";
  return out;
}

std::vector<std::pair<std::vector<RowId>, uint32_t>>
ConflictHypergraph::CanonicalEdges() const {
  std::vector<std::pair<std::vector<RowId>, uint32_t>> out;
  out.reserve(num_live_edges_);
  for (EdgeId e = 0; e < num_edge_slots_; ++e) {
    if (!EdgeAlive(e)) continue;
    out.emplace_back(edge(e), edge_constraint(e));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- memory accounting -----------------------------------------------------

namespace {

size_t VertexListBytes(const std::vector<RowId>& vs) {
  return sizeof(vs) + vs.capacity() * sizeof(RowId);
}

}  // namespace

size_t ConflictHypergraph::ApproxBytes() const {
  std::unordered_set<const void*> seen;
  size_t bytes = sizeof(ConflictHypergraph);
  AccumulateApproxBytes(&seen, &bytes);
  return bytes;
}

void ConflictHypergraph::AccumulateApproxBytes(
    std::unordered_set<const void*>* seen, size_t* bytes) const {
  for (const auto& chunk : chunks_) {
    if (!seen->insert(chunk.get()).second) continue;
    size_t b = sizeof(EdgeChunk);
    for (const auto& vs : chunk->vertices) b += VertexListBytes(vs);
    b += chunk->constraint.capacity() * sizeof(uint32_t);
    b += chunk->alive.capacity() / 8;
    *bytes += b;
  }
  for (const auto& shard : incident_) {
    if (shard == nullptr || !seen->insert(shard.get()).second) continue;
    size_t b = sizeof(IncidentShard);
    for (const auto& [v, list] : shard->lists) {
      (void)v;
      b += sizeof(RowId) + sizeof(list) + list.capacity() * sizeof(EdgeId) +
           2 * sizeof(void*);
    }
    *bytes += b;
  }
  for (const auto& shard : canonical_) {
    if (shard == nullptr || !seen->insert(shard.get()).second) continue;
    size_t b = sizeof(CanonicalShard);
    for (const auto& [key, id] : shard->ids) {
      (void)id;
      b += sizeof(std::string) + key.capacity() + sizeof(EdgeId) +
           2 * sizeof(void*);
    }
    *bytes += b;
  }
}

std::vector<const void*> ConflictHypergraph::PartitionPointers() const {
  std::vector<const void*> out;
  out.reserve(chunks_.size() + kIncidentShards + kCanonicalShards);
  for (const auto& chunk : chunks_) out.push_back(chunk.get());
  for (const auto& shard : incident_) {
    if (shard != nullptr) out.push_back(shard.get());
  }
  for (const auto& shard : canonical_) {
    if (shard != nullptr) out.push_back(shard.get());
  }
  return out;
}

}  // namespace hippo
