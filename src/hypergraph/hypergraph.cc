#include "hypergraph/hypergraph.h"

#include <algorithm>

#include "common/str_util.h"

namespace hippo {

namespace {

std::string CanonicalKey(const std::vector<RowId>& sorted_vertices) {
  std::string key;
  key.reserve(sorted_vertices.size() * sizeof(uint64_t));
  for (const RowId& v : sorted_vertices) {
    uint64_t packed = v.Pack();
    key.append(reinterpret_cast<const char*>(&packed), sizeof(packed));
  }
  return key;
}

}  // namespace

void EdgeBuffer::Add(std::vector<RowId> vertices, uint32_t constraint_index) {
  HIPPO_CHECK_MSG(!vertices.empty(), "hyperedge needs at least one vertex");
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  entries_.push_back(StagedEdge{std::move(vertices), constraint_index});
}

size_t ConflictHypergraph::BulkLoad(std::vector<EdgeBuffer> buffers) {
  size_t total = 0;
  for (const EdgeBuffer& b : buffers) total += b.NumEntries();
  std::vector<EdgeBuffer::StagedEdge> staged;
  staged.reserve(total);
  for (EdgeBuffer& b : buffers) {
    for (EdgeBuffer::StagedEdge& e : b.mutable_entries()) {
      staged.push_back(std::move(e));
    }
  }
  std::sort(staged.begin(), staged.end());
  for (EdgeBuffer::StagedEdge& e : staged) {
    AddEdge(std::move(e.vertices), e.constraint_index);
  }
  return total;
}

ConflictHypergraph::EdgeId ConflictHypergraph::AddEdge(
    std::vector<RowId> vertices, uint32_t constraint_index) {
  HIPPO_CHECK_MSG(!vertices.empty(), "hyperedge needs at least one vertex");
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  std::string key = CanonicalKey(vertices);
  auto it = canonical_.find(key);
  if (it != canonical_.end()) {
    EdgeId id = it->second;
    if (!edge_alive_[id]) {
      // Revive the tombstoned slot: same vertex set, same edge id.
      edge_alive_[id] = true;
      ++num_live_edges_;
      edge_constraint_[id] = constraint_index;
      for (const RowId& v : edges_[id]) incident_[v].push_back(id);
    } else if (constraint_index < edge_constraint_[id]) {
      // Live merge: provenance is the first constraint in detection order
      // that produces this vertex set, i.e. the smallest index. Detection
      // adds edges in index order so this only fires for incremental
      // maintenance, where a lower-indexed producer can appear later.
      edge_constraint_[id] = constraint_index;
    }
    return id;
  }

  EdgeId id = static_cast<EdgeId>(edges_.size());
  for (const RowId& v : vertices) incident_[v].push_back(id);
  edges_.push_back(std::move(vertices));
  edge_constraint_.push_back(constraint_index);
  edge_alive_.push_back(true);
  ++num_live_edges_;
  canonical_.emplace(std::move(key), id);
  return id;
}

void ConflictHypergraph::RemoveEdge(EdgeId e) {
  if (e >= edges_.size() || !edge_alive_[e]) return;
  edge_alive_[e] = false;
  --num_live_edges_;
  for (const RowId& v : edges_[e]) {
    auto it = incident_.find(v);
    if (it == incident_.end()) continue;
    auto& list = it->second;
    list.erase(std::remove(list.begin(), list.end(), e), list.end());
    if (list.empty()) incident_.erase(it);
  }
}

size_t ConflictHypergraph::RemoveIncidentEdges(RowId v) {
  auto it = incident_.find(v);
  if (it == incident_.end()) return 0;
  // RemoveEdge mutates incident_[v]; work off a copy.
  std::vector<EdgeId> edges = it->second;
  for (EdgeId e : edges) RemoveEdge(e);
  return edges.size();
}

const std::vector<ConflictHypergraph::EdgeId>&
ConflictHypergraph::IncidentEdges(RowId v) const {
  static const std::vector<EdgeId> kEmpty;
  auto it = incident_.find(v);
  return it == incident_.end() ? kEmpty : it->second;
}

std::vector<RowId> ConflictHypergraph::ConflictingVertices() const {
  std::vector<RowId> out;
  out.reserve(incident_.size());
  for (const auto& [v, _] : incident_) out.push_back(v);
  return out;
}

bool ConflictHypergraph::EdgeInside(EdgeId e, const VertexSet& set) const {
  for (const RowId& v : edges_[e]) {
    if (!set.count(v)) return false;
  }
  return true;
}

bool ConflictHypergraph::ContainsFullEdge(const VertexSet& set) const {
  std::unordered_set<EdgeId> checked;
  for (const RowId& v : set) {
    for (EdgeId e : IncidentEdges(v)) {
      if (!checked.insert(e).second) continue;
      if (EdgeInside(e, set)) return true;
    }
  }
  return false;
}

size_t ConflictHypergraph::MaxDegree() const {
  size_t max_deg = 0;
  for (const auto& [_, edges] : incident_) {
    max_deg = std::max(max_deg, edges.size());
  }
  return max_deg;
}

std::string ConflictHypergraph::StatsString() const {
  return StrFormat("hypergraph: %zu edges, %zu conflicting tuples, max degree %zu",
                   NumEdges(), NumConflictingVertices(), MaxDegree());
}

std::string ConflictHypergraph::ToDot(size_t max_edges) const {
  // Hyperedges of arity > 2 are rendered as a small square junction node
  // connected to each member; binary edges as plain edges. Colours cycle by
  // constraint index.
  static const char* kColors[] = {"crimson", "dodgerblue3", "forestgreen",
                                  "darkorange2", "purple3", "goldenrod3"};
  std::string out = "graph conflicts {\n  node [shape=ellipse];\n";
  size_t rendered = 0;
  for (EdgeId e = 0; e < edges_.size() && rendered < max_edges; ++e) {
    if (!edge_alive_[e]) continue;
    ++rendered;
    const char* color =
        kColors[edge_constraint_[e] % (sizeof(kColors) / sizeof(kColors[0]))];
    const std::vector<RowId>& vs = edges_[e];
    if (vs.size() == 1) {
      out += StrFormat("  \"%s\" [color=%s, penwidth=2];\n",
                       vs[0].ToString().c_str(), color);
    } else if (vs.size() == 2) {
      out += StrFormat("  \"%s\" -- \"%s\" [color=%s];\n",
                       vs[0].ToString().c_str(), vs[1].ToString().c_str(),
                       color);
    } else {
      std::string junction = StrFormat("e%u", e);
      out += StrFormat(
          "  \"%s\" [shape=point, color=%s];\n", junction.c_str(), color);
      for (const RowId& v : vs) {
        out += StrFormat("  \"%s\" -- \"%s\" [color=%s];\n", junction.c_str(),
                         v.ToString().c_str(), color);
      }
    }
  }
  if (rendered < NumEdges()) {
    out += StrFormat("  label=\"%zu of %zu edges shown\";\n", rendered,
                     NumEdges());
  }
  out += "}\n";
  return out;
}

std::vector<std::pair<std::vector<RowId>, uint32_t>>
ConflictHypergraph::CanonicalEdges() const {
  std::vector<std::pair<std::vector<RowId>, uint32_t>> out;
  out.reserve(num_live_edges_);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!edge_alive_[e]) continue;
    out.emplace_back(edges_[e], edge_constraint_[e]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hippo
