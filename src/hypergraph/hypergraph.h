// The conflict hypergraph: the compact representation of all integrity
// violations that Hippo keeps in main memory.
//
// Vertices are the tuples of the database (identified by RowId); a hyperedge
// connects the tuples that jointly violate one integrity constraint. The
// hypergraph has polynomial size in the data, which is what gives Hippo its
// polynomial data complexity: repairs are exactly the maximal independent
// sets, and the prover answers per-tuple questions against the hypergraph
// without ever materializing a repair.
//
// Storage is partitioned behind shared_ptr for copy-on-write epoch
// publication (DESIGN.md §5): the edge store is split into fixed-size
// chunks (edge id = chunk ordinal × kChunkSlots + slot, so ids are
// unchanged by partitioning), and the incident index and canonical dedup
// map are hash-sharded. Share() hands out a graph that shares every
// partition and marks both sides copy-on-write; the next mutation clones
// only the touched partitions, so a snapshot costs O(#partitions) to take
// and a small commit dirties O(edges touched) storage instead of the whole
// graph. Share() is a write on the source (it requires exclusion from
// concurrent readers and mutators, like DML); the frozen copy is then safe
// for any number of readers.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/table.h"

namespace hippo {

/// A set of vertices, used for independence checks.
using VertexSet = std::unordered_set<RowId, RowIdHasher>;

/// \brief Append-only staging area for hyperedges built off the graph.
///
/// Parallel conflict detection gives each work unit (a constraint, or one
/// determinant-hash shard of a large FD) a private EdgeBuffer, so workers
/// never touch the shared graph; ConflictHypergraph::BulkLoad merges the
/// buffers afterwards. Vertices are canonicalized (sorted, deduplicated)
/// at Add time, exactly as ConflictHypergraph::AddEdge would, so merging
/// is a plain sort over canonical vertex sets.
class EdgeBuffer {
 public:
  struct StagedEdge {
    std::vector<RowId> vertices;  ///< canonical: sorted, deduplicated
    uint32_t constraint_index = 0;

    bool operator<(const StagedEdge& o) const {
      return vertices != o.vertices ? vertices < o.vertices
                                    : constraint_index < o.constraint_index;
    }
  };

  /// Stages an edge (same canonicalization as ConflictHypergraph::AddEdge;
  /// duplicates are kept and collapse at BulkLoad time).
  void Add(std::vector<RowId> vertices, uint32_t constraint_index);

  const std::vector<StagedEdge>& entries() const { return entries_; }
  /// Mutable access for consumers that move the staged edges out
  /// (ConflictHypergraph::BulkLoad, ConflictDetector::Flush).
  std::vector<StagedEdge>& mutable_entries() { return entries_; }
  size_t NumEntries() const { return entries_.size(); }

 private:
  std::vector<StagedEdge> entries_;
};

class ConflictHypergraph {
 public:
  using EdgeId = uint32_t;

  ConflictHypergraph() = default;
  // Plain copying is deleted on purpose: a structural-sharing copy must
  // mark the source's copy-on-write flags (a write), which a const& copy
  // constructor would hide from callers and from the thread-safety
  // contract. Use Share() (explicitly non-const, like Catalog::Share) or
  // DeepCopy().
  HIPPO_DISALLOW_COPY(ConflictHypergraph);
  ConflictHypergraph(ConflictHypergraph&&) = default;
  ConflictHypergraph& operator=(ConflictHypergraph&&) = default;

  /// Structurally shared copy (copy-on-write): the returned graph points at
  /// the same immutable partitions, and every partition of *both* graphs is
  /// marked shared so the next mutation on either side clones only the
  /// touched partition. O(#partitions); value semantics are preserved.
  /// Non-const because sharing writes the source's COW marks — it requires
  /// the same exclusion from concurrent readers and mutators as any other
  /// write (the commit path provides it). This is how service::Snapshot
  /// freezes an epoch; the frozen copy is then safe for any number of
  /// concurrent readers.
  ConflictHypergraph Share();

  /// A fully materialized private copy sharing nothing with `this` — the
  /// pre-COW publication behavior, kept as the baseline for the COW
  /// differential tests and bench_f10_snapshot.
  ConflictHypergraph DeepCopy() const;

  /// Adds an edge; vertices are deduplicated and canonically sorted, and
  /// duplicate edges (same vertex set) are merged. `constraint_index`
  /// records provenance. Returns the edge id (existing one on merge; a
  /// previously removed edge with the same vertex set is revived in place).
  EdgeId AddEdge(std::vector<RowId> vertices, uint32_t constraint_index);

  /// Merges staged buffers into the graph deterministically: the entries of
  /// all buffers are sorted by (canonical vertex set, constraint index) and
  /// inserted in that order. Edge ids and provenance therefore depend only
  /// on the staged edge multiset — never on how detection was decomposed
  /// into threads or shards. Duplicate vertex sets collapse onto the
  /// smallest producing constraint index (the same min-provenance invariant
  /// AddEdge maintains for live merges). Returns the number of staged
  /// entries consumed (pre-dedup, mirroring one AddEdge call per entry).
  size_t BulkLoad(std::vector<EdgeBuffer> buffers);

  /// Removes an edge (no-op when already removed). The slot stays reserved
  /// so other edge ids remain stable; incident lists are scrubbed. Used by
  /// incremental maintenance when a participating tuple is deleted.
  void RemoveEdge(EdgeId e);

  /// Removes every edge incident to `v` (the tuple left the instance).
  /// Returns the number of edges removed.
  size_t RemoveIncidentEdges(RowId v);

  /// Number of live edges (the semantic size of the hypergraph).
  size_t NumEdges() const { return num_live_edges_; }
  /// Number of physical edge slots; iterate [0, NumEdgeSlots()) and filter
  /// with EdgeAlive() to visit the live edges.
  size_t NumEdgeSlots() const { return num_edge_slots_; }
  bool EdgeAlive(EdgeId e) const {
    return chunks_[e >> kChunkShift]->alive[e & kChunkMask];
  }
  const std::vector<RowId>& edge(EdgeId e) const {
    return chunks_[e >> kChunkShift]->vertices[e & kChunkMask];
  }
  uint32_t edge_constraint(EdgeId e) const {
    return chunks_[e >> kChunkShift]->constraint[e & kChunkMask];
  }

  /// Edges incident to a vertex (empty for conflict-free tuples).
  const std::vector<EdgeId>& IncidentEdges(RowId v) const;

  /// True if the tuple participates in at least one violation.
  bool IsConflicting(RowId v) const { return !IncidentEdges(v).empty(); }

  /// Number of distinct vertices that appear in some edge.
  size_t NumConflictingVertices() const { return num_conflicting_; }

  /// The conflicting vertices (unordered).
  std::vector<RowId> ConflictingVertices() const;

  /// True if every vertex of edge `e` is contained in `set`.
  bool EdgeInside(EdgeId e, const VertexSet& set) const;

  /// True if `set` contains some full hyperedge (i.e. is NOT independent).
  /// Cost: sum of degrees of the members.
  bool ContainsFullEdge(const VertexSet& set) const;

  /// Maximum vertex degree (for stats / ablations).
  size_t MaxDegree() const;

  std::string StatsString() const;

  /// Graphviz rendering (vertices labelled by RowId, one colour component
  /// per constraint index) — used by the `hippo_check` conflict reporter.
  std::string ToDot(size_t max_edges = 500) const;

  /// Canonical (sorted) list of live edges with their constraint indexes —
  /// used by differential tests to compare hypergraphs structurally.
  std::vector<std::pair<std::vector<RowId>, uint32_t>> CanonicalEdges() const;

  /// Rough resident bytes of the graph (all partitions).
  size_t ApproxBytes() const;

  /// Adds the bytes of every partition not already in `seen` (keyed by
  /// partition object identity) to `*bytes`, inserting as it goes — the
  /// structural-sharing-aware footprint used by the snapshot memory
  /// accounting.
  void AccumulateApproxBytes(std::unordered_set<const void*>* seen,
                             size_t* bytes) const;

  /// Identity of every live partition (edge chunks, incident shards,
  /// canonical shards) — lets tests assert that untouched partitions are
  /// pointer-shared across epochs.
  std::vector<const void*> PartitionPointers() const;

 private:
  // Partition geometry. Chunks keep edge ids identical to the unpartitioned
  // representation (id = chunk × kChunkSlots + slot, assigned in insertion
  // order); shard counts bound the cloned fraction of the incident/dedup
  // maps per mutated vertex to ~1/kIncidentShards of the graph.
  static constexpr size_t kChunkShift = 8;
  static constexpr size_t kChunkSlots = size_t{1} << kChunkShift;  // 256
  static constexpr EdgeId kChunkMask = kChunkSlots - 1;
  static constexpr size_t kIncidentShards = 64;
  static constexpr size_t kCanonicalShards = 64;

  /// A fixed-size run of edge slots (vertex sets, provenance, tombstones).
  struct EdgeChunk {
    std::vector<std::vector<RowId>> vertices;
    std::vector<uint32_t> constraint;
    std::vector<bool> alive;
  };

  /// One hash shard of the vertex → incident-edge-ids index.
  struct IncidentShard {
    std::unordered_map<RowId, std::vector<EdgeId>, RowIdHasher> lists;
  };

  /// One hash shard of the canonical-vertex-set → edge id dedup map (live
  /// and tombstoned; a tombstoned entry is revived when the same edge
  /// reappears). Write-path only — readers never consult it.
  struct CanonicalShard {
    std::unordered_map<std::string, EdgeId> ids;
  };

  static size_t IncidentShardOf(RowId v) {
    return RowIdHasher()(v) & (kIncidentShards - 1);
  }
  static size_t CanonicalShardOf(const std::string& key) {
    return std::hash<std::string>()(key) & (kCanonicalShards - 1);
  }

  /// Copy-on-write accessors: clone the partition iff it is marked shared.
  EdgeChunk* MutableChunk(size_t ci);
  IncidentShard* MutableIncidentShard(size_t si);
  CanonicalShard* MutableCanonicalShard(size_t si);

  void AddIncident(RowId v, EdgeId e);
  void RemoveIncident(RowId v, EdgeId e);

  std::vector<std::shared_ptr<EdgeChunk>> chunks_;
  std::array<std::shared_ptr<IncidentShard>, kIncidentShards> incident_{};
  std::array<std::shared_ptr<CanonicalShard>, kCanonicalShards> canonical_{};

  /// Per-partition copy-on-write marks: true when the partition may also be
  /// referenced by another graph object (set on both sides by Share()).
  std::vector<bool> chunk_shared_;
  std::array<bool, kIncidentShards> incident_shared_{};
  std::array<bool, kCanonicalShards> canonical_shared_{};

  size_t num_edge_slots_ = 0;
  size_t num_live_edges_ = 0;
  size_t num_conflicting_ = 0;  ///< vertices with a nonempty incident list
};

}  // namespace hippo
