// The conflict hypergraph: the compact representation of all integrity
// violations that Hippo keeps in main memory.
//
// Vertices are the tuples of the database (identified by RowId); a hyperedge
// connects the tuples that jointly violate one integrity constraint. The
// hypergraph has polynomial size in the data, which is what gives Hippo its
// polynomial data complexity: repairs are exactly the maximal independent
// sets, and the prover answers per-tuple questions against the hypergraph
// without ever materializing a repair.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/table.h"

namespace hippo {

/// A set of vertices, used for independence checks.
using VertexSet = std::unordered_set<RowId, RowIdHasher>;

/// \brief Append-only staging area for hyperedges built off the graph.
///
/// Parallel conflict detection gives each work unit (a constraint, or one
/// determinant-hash shard of a large FD) a private EdgeBuffer, so workers
/// never touch the shared graph; ConflictHypergraph::BulkLoad merges the
/// buffers afterwards. Vertices are canonicalized (sorted, deduplicated)
/// at Add time, exactly as ConflictHypergraph::AddEdge would, so merging
/// is a plain sort over canonical vertex sets.
class EdgeBuffer {
 public:
  struct StagedEdge {
    std::vector<RowId> vertices;  ///< canonical: sorted, deduplicated
    uint32_t constraint_index = 0;

    bool operator<(const StagedEdge& o) const {
      return vertices != o.vertices ? vertices < o.vertices
                                    : constraint_index < o.constraint_index;
    }
  };

  /// Stages an edge (same canonicalization as ConflictHypergraph::AddEdge;
  /// duplicates are kept and collapse at BulkLoad time).
  void Add(std::vector<RowId> vertices, uint32_t constraint_index);

  const std::vector<StagedEdge>& entries() const { return entries_; }
  /// Mutable access for consumers that move the staged edges out
  /// (ConflictHypergraph::BulkLoad, ConflictDetector::Flush).
  std::vector<StagedEdge>& mutable_entries() { return entries_; }
  size_t NumEntries() const { return entries_.size(); }

 private:
  std::vector<StagedEdge> entries_;
};

class ConflictHypergraph {
 public:
  using EdgeId = uint32_t;

  /// Adds an edge; vertices are deduplicated and canonically sorted, and
  /// duplicate edges (same vertex set) are merged. `constraint_index`
  /// records provenance. Returns the edge id (existing one on merge; a
  /// previously removed edge with the same vertex set is revived in place).
  EdgeId AddEdge(std::vector<RowId> vertices, uint32_t constraint_index);

  /// Merges staged buffers into the graph deterministically: the entries of
  /// all buffers are sorted by (canonical vertex set, constraint index) and
  /// inserted in that order. Edge ids and provenance therefore depend only
  /// on the staged edge multiset — never on how detection was decomposed
  /// into threads or shards. Duplicate vertex sets collapse onto the
  /// smallest producing constraint index (the same min-provenance invariant
  /// AddEdge maintains for live merges). Returns the number of staged
  /// entries consumed (pre-dedup, mirroring one AddEdge call per entry).
  size_t BulkLoad(std::vector<EdgeBuffer> buffers);

  /// Removes an edge (no-op when already removed). The slot stays reserved
  /// so other edge ids remain stable; incident lists are scrubbed. Used by
  /// incremental maintenance when a participating tuple is deleted.
  void RemoveEdge(EdgeId e);

  /// Removes every edge incident to `v` (the tuple left the instance).
  /// Returns the number of edges removed.
  size_t RemoveIncidentEdges(RowId v);

  /// Number of live edges (the semantic size of the hypergraph).
  size_t NumEdges() const { return num_live_edges_; }
  /// Number of physical edge slots; iterate [0, NumEdgeSlots()) and filter
  /// with EdgeAlive() to visit the live edges.
  size_t NumEdgeSlots() const { return edges_.size(); }
  bool EdgeAlive(EdgeId e) const { return edge_alive_[e]; }
  const std::vector<RowId>& edge(EdgeId e) const { return edges_[e]; }
  uint32_t edge_constraint(EdgeId e) const { return edge_constraint_[e]; }

  /// Edges incident to a vertex (empty for conflict-free tuples).
  const std::vector<EdgeId>& IncidentEdges(RowId v) const;

  /// True if the tuple participates in at least one violation.
  bool IsConflicting(RowId v) const { return !IncidentEdges(v).empty(); }

  /// Number of distinct vertices that appear in some edge.
  size_t NumConflictingVertices() const { return incident_.size(); }

  /// The conflicting vertices (unordered).
  std::vector<RowId> ConflictingVertices() const;

  /// True if every vertex of edge `e` is contained in `set`.
  bool EdgeInside(EdgeId e, const VertexSet& set) const;

  /// True if `set` contains some full hyperedge (i.e. is NOT independent).
  /// Cost: sum of degrees of the members.
  bool ContainsFullEdge(const VertexSet& set) const;

  /// Maximum vertex degree (for stats / ablations).
  size_t MaxDegree() const;

  std::string StatsString() const;

  /// Graphviz rendering (vertices labelled by RowId, one colour component
  /// per constraint index) — used by the `hippo_check` conflict reporter.
  std::string ToDot(size_t max_edges = 500) const;

  /// Canonical (sorted) list of live edges with their constraint indexes —
  /// used by differential tests to compare hypergraphs structurally.
  std::vector<std::pair<std::vector<RowId>, uint32_t>> CanonicalEdges() const;

 private:
  std::vector<std::vector<RowId>> edges_;
  std::vector<uint32_t> edge_constraint_;
  std::vector<bool> edge_alive_;
  size_t num_live_edges_ = 0;
  std::unordered_map<RowId, std::vector<EdgeId>, RowIdHasher> incident_;
  // Dedup of canonical vertex sets -> edge id (live and tombstoned; a
  // tombstoned entry is revived when the same edge reappears).
  std::unordered_map<std::string, EdgeId> canonical_;
};

}  // namespace hippo
