// The conflict hypergraph: the compact representation of all integrity
// violations that Hippo keeps in main memory.
//
// Vertices are the tuples of the database (identified by RowId); a hyperedge
// connects the tuples that jointly violate one integrity constraint. The
// hypergraph has polynomial size in the data, which is what gives Hippo its
// polynomial data complexity: repairs are exactly the maximal independent
// sets, and the prover answers per-tuple questions against the hypergraph
// without ever materializing a repair.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/table.h"

namespace hippo {

/// A set of vertices, used for independence checks.
using VertexSet = std::unordered_set<RowId, RowIdHasher>;

class ConflictHypergraph {
 public:
  using EdgeId = uint32_t;

  /// Adds an edge; vertices are deduplicated and canonically sorted, and
  /// duplicate edges (same vertex set) are merged. `constraint_index`
  /// records provenance. Returns the edge id (existing one on merge; a
  /// previously removed edge with the same vertex set is revived in place).
  EdgeId AddEdge(std::vector<RowId> vertices, uint32_t constraint_index);

  /// Removes an edge (no-op when already removed). The slot stays reserved
  /// so other edge ids remain stable; incident lists are scrubbed. Used by
  /// incremental maintenance when a participating tuple is deleted.
  void RemoveEdge(EdgeId e);

  /// Removes every edge incident to `v` (the tuple left the instance).
  /// Returns the number of edges removed.
  size_t RemoveIncidentEdges(RowId v);

  /// Number of live edges (the semantic size of the hypergraph).
  size_t NumEdges() const { return num_live_edges_; }
  /// Number of physical edge slots; iterate [0, NumEdgeSlots()) and filter
  /// with EdgeAlive() to visit the live edges.
  size_t NumEdgeSlots() const { return edges_.size(); }
  bool EdgeAlive(EdgeId e) const { return edge_alive_[e]; }
  const std::vector<RowId>& edge(EdgeId e) const { return edges_[e]; }
  uint32_t edge_constraint(EdgeId e) const { return edge_constraint_[e]; }

  /// Edges incident to a vertex (empty for conflict-free tuples).
  const std::vector<EdgeId>& IncidentEdges(RowId v) const;

  /// True if the tuple participates in at least one violation.
  bool IsConflicting(RowId v) const { return !IncidentEdges(v).empty(); }

  /// Number of distinct vertices that appear in some edge.
  size_t NumConflictingVertices() const { return incident_.size(); }

  /// The conflicting vertices (unordered).
  std::vector<RowId> ConflictingVertices() const;

  /// True if every vertex of edge `e` is contained in `set`.
  bool EdgeInside(EdgeId e, const VertexSet& set) const;

  /// True if `set` contains some full hyperedge (i.e. is NOT independent).
  /// Cost: sum of degrees of the members.
  bool ContainsFullEdge(const VertexSet& set) const;

  /// Maximum vertex degree (for stats / ablations).
  size_t MaxDegree() const;

  std::string StatsString() const;

  /// Graphviz rendering (vertices labelled by RowId, one colour component
  /// per constraint index) — used by the `hippo_check` conflict reporter.
  std::string ToDot(size_t max_edges = 500) const;

  /// Canonical (sorted) list of live edges with their constraint indexes —
  /// used by differential tests to compare hypergraphs structurally.
  std::vector<std::pair<std::vector<RowId>, uint32_t>> CanonicalEdges() const;

 private:
  std::vector<std::vector<RowId>> edges_;
  std::vector<uint32_t> edge_constraint_;
  std::vector<bool> edge_alive_;
  size_t num_live_edges_ = 0;
  std::unordered_map<RowId, std::vector<EdgeId>, RowIdHasher> incident_;
  // Dedup of canonical vertex sets -> edge id (live and tombstoned; a
  // tombstoned entry is revived when the same edge reappears).
  std::unordered_map<std::string, EdgeId> canonical_;
};

}  // namespace hippo
