#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace hippo::obs {

namespace {

std::string FormatMs(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

}  // namespace

TraceSpan* TraceSpan::StartChild(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  children_.emplace_back(std::move(name));
  return &children_.back();
}

void TraceSpan::End() {
  std::lock_guard<std::mutex> lock(mu_);
  if (end_ == Clock::time_point{}) end_ = Clock::now();
}

double TraceSpan::seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point stop =
      end_ == Clock::time_point{} ? Clock::now() : end_;
  return std::chrono::duration<double>(stop - start_).count();
}

void TraceSpan::SetAttr(const std::string& key, int64_t value) {
  SetAttr(key, std::to_string(value));
}

void TraceSpan::SetAttr(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  attrs_.emplace_back(key, value);
}

std::string TraceSpan::Attr(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return "";
}

std::vector<const TraceSpan*> TraceSpan::Children() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const TraceSpan*> out;
  out.reserve(children_.size());
  for (const TraceSpan& c : children_) out.push_back(&c);
  return out;
}

size_t TraceSpan::MaxLabelWidth(size_t depth) const {
  size_t width = depth * 2 + name_.size();
  for (const TraceSpan* c : Children()) {
    width = std::max(width, c->MaxLabelWidth(depth + 1));
  }
  return width;
}

void TraceSpan::RenderInto(std::string* out, size_t depth,
                           size_t name_width) const {
  std::string label(depth * 2, ' ');
  label += name_;
  if (label.size() < name_width) label.resize(name_width, ' ');
  *out += label;
  *out += "  ";
  *out += FormatMs(seconds());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [k, v] : attrs_) {
      *out += "  ";
      *out += k;
      *out += '=';
      *out += v;
    }
  }
  *out += '\n';
  for (const TraceSpan* c : Children()) {
    c->RenderInto(out, depth + 1, name_width);
  }
}

std::string TraceSpan::Render() const {
  std::string out;
  RenderInto(&out, 0, MaxLabelWidth(0));
  return out;
}

std::string TraceSpan::Summary() const {
  std::string out = name_;
  out += ' ';
  out += FormatMs(seconds());
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : attrs_) {
    out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace hippo::obs
