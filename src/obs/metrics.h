// Low-overhead metrics primitives: named counters, gauges, and fixed-bucket
// latency histograms, collected in a registry and dumped as Prometheus-style
// text exposition or JSON.
//
// Hot-path contract: recording into any metric is a handful of relaxed
// atomic operations on sharded, cache-line-padded slots — no locks, no
// allocation, no syscalls. The registry mutex is taken only at
// registration time (get-or-create by name) and when rendering a dump;
// handles returned by the registry are stable for its lifetime, so callers
// resolve them once and record through raw pointers.
//
// Reads are snapshot-on-read: Value()/Snapshot() sum the shards with
// relaxed loads. Concurrent recorders may race a snapshot by a few
// in-flight increments; totals are exact once recorders quiesce (the
// concurrent-merge test in tests/obs_metrics_test.cc pins this under
// TSan).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hippo::obs {

/// Shards per metric: recorders pick a shard by hashing their thread id,
/// so concurrent threads usually touch distinct cache lines. A small
/// power of two keeps per-metric memory modest while removing almost all
/// contention at realistic worker counts (the serving stack runs a
/// handful of workers, not hundreds).
constexpr size_t kMetricShards = 16;

/// Monotonic counter (sharded).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  static size_t ShardIndex();
  std::array<Shard, kMetricShards> shards_;
};

/// Last-value gauge (single atomic: gauges are set, not accumulated, so
/// sharding would make the "current value" ambiguous).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Bucket grid shared by every histogram: log-spaced bounds growing by
/// 2^(1/4) (~19%) per bucket from 1e-6, covering ~1 microsecond to ~4.7
/// hours of latency — and, since values are plain doubles, unit-less
/// magnitudes like batch sizes from 1 to ~17e3 land mid-grid with the
/// same relative resolution. Values above the last bound clamp into the
/// final bucket; quantiles stay correct up to that saturation point.
constexpr size_t kHistogramBuckets = 136;

/// One immutable histogram read: cumulative-free per-bucket counts plus
/// exact sum/count. Quantiles interpolate within the winning bucket, so
/// p50/p95/p99 have the grid's ~19% relative resolution.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  bool empty() const { return count == 0; }
  double Mean() const { return count == 0 ? 0 : sum / double(count); }
  /// q in [0,1]; returns 0 on an empty snapshot.
  double Quantile(double q) const;
  /// Pointwise accumulate (for cross-shard / cross-instance merging).
  void Merge(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram (sharded). Record() is wait-free: one relaxed
/// fetch_add on the bucket slot, one on the count, plus a CAS-free
/// double-as-bits accumulation of the sum.
class LatencyHistogram {
 public:
  void Record(double value);
  HistogramSnapshot Snapshot() const;

  /// Upper bound of bucket `i` (inclusive; the last bucket also absorbs
  /// any larger value).
  static double BucketBound(size_t i);
  /// Bucket index a value lands in.
  static size_t BucketFor(double value);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    /// Sum of recorded values in nanounits (value * 1e9, rounded), so the
    /// accumulation is a single integer fetch_add instead of a CAS loop
    /// on a double. Exact for latencies (clock resolution is coarser) and
    /// counts; converted back to a double on read.
    std::atomic<int64_t> sum_nano{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Name-keyed registry of metrics. Names follow the Prometheus
/// convention: `hippo_commit_apply_seconds`, with optional labels
/// rendered into the key as `hippo_query_seconds{route="prover"}`.
/// Registration is get-or-create under a mutex; the returned pointers
/// stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Renders `name{k1="v1",k2="v2"}` for label-qualified metrics.
  static std::string Labeled(
      const std::string& name,
      std::initializer_list<std::pair<const char*, std::string>> labels);

  /// Prometheus-style text exposition: one `name value` line per counter
  /// and gauge; histograms emit `<name>_count`, `<name>_sum`, and
  /// summary-style `<name>{quantile="0.5|0.95|0.99"}` lines (compact —
  /// the 136-bucket grid is not exploded into `_bucket` lines). Lines
  /// are sorted by name for deterministic output.
  std::string DumpPrometheus() const;

  /// The same content as a single JSON object:
  /// {"counters":{...},"gauges":{...},
  ///  "histograms":{name:{"count":..,"sum":..,"mean":..,
  ///                      "p50":..,"p95":..,"p99":..}}}.
  std::string DumpJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// Process-global registry: tools (hippo_shell) and one-off
/// instrumentation record here; QueryService owns a private registry per
/// service instance so concurrent services (and tests) stay hermetic.
MetricsRegistry& Global();

}  // namespace hippo::obs
