// Per-query trace spans: a tree of named, wall-clocked spans with string
// attributes, threaded through the serving stack as a nullable pointer
// (ExecContext::trace, HippoOptions::trace). A null pointer means tracing
// is off and costs one branch per *operator* — spans are never created per
// row, so the disabled path stays within the F14 overhead contract and the
// enabled path's cost is proportional to plan size, not data size.
//
// Spans are created via StartChild on the parent, which is safe to call
// from concurrent workers (children live in a deque under a mutex; the
// returned pointers are stable). Rendering the finished tree produces the
// EXPLAIN ANALYZE output: one line per span with wall time and attributes
// (rows, route, candidates, ...), children indented beneath.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hippo::obs {

class TraceSpan {
 public:
  explicit TraceSpan(std::string name)
      : name_(std::move(name)), start_(Clock::now()) {}

  /// Creates (and starts) a child span. Thread-safe; the pointer stays
  /// valid for the parent's lifetime. The caller must End() it (or let
  /// seconds() read "still running").
  TraceSpan* StartChild(std::string name);

  /// Stops the clock. Idempotent: the first call wins.
  void End();

  void SetAttr(const std::string& key, int64_t value);
  void SetAttr(const std::string& key, const std::string& value);

  const std::string& name() const { return name_; }
  /// Wall seconds: start → End() (or → now while still running).
  double seconds() const;

  /// Attribute lookup (tests); empty string when absent.
  std::string Attr(const std::string& key) const;

  /// Child spans in creation order.
  std::vector<const TraceSpan*> Children() const;

  /// Renders the span tree: `name ... 12.3 ms  k=v k=v`, children
  /// indented two spaces per level.
  std::string Render() const;

  /// One-line summary of the root span: "name 12.3 ms [k=v ...]" — used
  /// by the slow-query log.
  std::string Summary() const;

 private:
  using Clock = std::chrono::steady_clock;

  void RenderInto(std::string* out, size_t depth, size_t name_width) const;
  size_t MaxLabelWidth(size_t depth) const;

  const std::string name_;
  const Clock::time_point start_;
  Clock::time_point end_{};  // epoch = still running
  mutable std::mutex mu_;
  std::deque<TraceSpan> children_;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace hippo::obs
