#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

namespace hippo::obs {

namespace {

/// First bucket bound; the grid grows by kGrowth per bucket.
constexpr double kFirstBound = 1e-6;
/// 2^(1/4): four buckets per doubling, ~19% relative resolution.
const double kGrowth = std::pow(2.0, 0.25);

/// Precomputed bound table (built once, read-only afterwards).
const std::array<double, kHistogramBuckets>& Bounds() {
  static const std::array<double, kHistogramBuckets> bounds = [] {
    std::array<double, kHistogramBuckets> b{};
    double v = kFirstBound;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      b[i] = v;
      v *= kGrowth;
    }
    return b;
  }();
  return bounds;
}

size_t ThreadShard() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricShards;
  return shard;
}

void AppendDouble(std::ostringstream* out, double v) {
  // Shortest faithful-enough rendering: fixed notation with up to 9
  // decimals, trailing zeros trimmed, so "3" stays "3" and latencies keep
  // nanosecond resolution.
  std::ostringstream tmp;
  tmp.precision(9);
  tmp << std::fixed << v;
  std::string s = tmp.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  *out << s;
}

}  // namespace

size_t Counter::ShardIndex() { return ThreadShard(); }

double LatencyHistogram::BucketBound(size_t i) {
  return Bounds()[std::min(i, kHistogramBuckets - 1)];
}

size_t LatencyHistogram::BucketFor(double value) {
  const auto& bounds = Bounds();
  if (!(value > bounds[0])) return 0;  // also catches NaN / negatives
  auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  if (it == bounds.end()) return kHistogramBuckets - 1;
  return size_t(it - bounds.begin());
}

void LatencyHistogram::Record(double value) {
  Shard& s = shards_[ThreadShard()];
  s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum_nano.fetch_add(int64_t(std::llround(value * 1e9)),
                       std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  int64_t sum_nano = 0;
  for (const Shard& s : shards_) {
    snap.count += s.count.load(std::memory_order_relaxed);
    sum_nano += s.sum_nano.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kHistogramBuckets; ++i)
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
  }
  snap.sum = double(sum_nano) * 1e-9;
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank over the bucketed distribution, then linear
  // interpolation inside the winning bucket.
  uint64_t rank = uint64_t(std::ceil(q * double(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      const double hi = LatencyHistogram::BucketBound(i);
      const double lo = i == 0 ? 0.0 : LatencyHistogram::BucketBound(i - 1);
      const double frac = double(rank - seen) / double(buckets[i]);
      return lo + (hi - lo) * frac;
    }
    seen += buckets[i];
  }
  return LatencyHistogram::BucketBound(kHistogramBuckets - 1);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kHistogramBuckets; ++i)
    buckets[i] += other.buckets[i];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::string MetricsRegistry::Labeled(
    const std::string& name,
    std::initializer_list<std::pair<const char*, std::string>> labels) {
  if (labels.size() == 0) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

namespace {

/// Splits `hippo_x_seconds{route="p"}` into base name and label suffix so
/// histogram sub-series render as `hippo_x_seconds_count{route="p"}`.
std::pair<std::string, std::string> SplitLabels(const std::string& key) {
  size_t brace = key.find('{');
  if (brace == std::string::npos) return {key, ""};
  return {key.substr(0, brace), key.substr(brace)};
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::DumpPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << ' ' << c->Value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << name << ' ' << g->Value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot snap = h->Snapshot();
    auto [base, labels] = SplitLabels(name);
    out << base << "_count" << labels << ' ' << snap.count << '\n';
    out << base << "_sum" << labels << ' ';
    AppendDouble(&out, snap.sum);
    out << '\n';
    static const std::pair<double, const char*> kQuantiles[] = {
        {0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}};
    for (const auto& [q, qname] : kQuantiles) {
      std::string qlabel = std::string("quantile=\"") + qname + "\"}";
      std::string qlabels =
          labels.empty() ? "{" + qlabel
                         : labels.substr(0, labels.size() - 1) + "," + qlabel;
      out << base << qlabels << ' ';
      AppendDouble(&out, snap.Quantile(q));
      out << '\n';
    }
  }
  return out.str();
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(name) << "\":" << c->Value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(name) << "\":" << g->Value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    const HistogramSnapshot snap = h->Snapshot();
    out << '"' << JsonEscape(name) << "\":{\"count\":" << snap.count
        << ",\"sum\":";
    AppendDouble(&out, snap.sum);
    out << ",\"mean\":";
    AppendDouble(&out, snap.Mean());
    out << ",\"p50\":";
    AppendDouble(&out, snap.Quantile(0.5));
    out << ",\"p95\":";
    AppendDouble(&out, snap.Quantile(0.95));
    out << ",\"p99\":";
    AppendDouble(&out, snap.Quantile(0.99));
    out << '}';
  }
  out << "}}";
  return out.str();
}

MetricsRegistry& Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace hippo::obs
