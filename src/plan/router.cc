#include "plan/router.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "plan/sjud.h"
#include "rewriting/rewriter.h"

namespace hippo {

const char* RouteKindName(RouteKind k) {
  switch (k) {
    case RouteKind::kNone: return "none";
    case RouteKind::kConflictFree: return "conflict-free";
    case RouteKind::kRewriteAbc: return "rewrite-abc";
    case RouteKind::kRewriteKw: return "rewrite-kw";
    case RouteKind::kProver: return "prover";
  }
  return "?";
}

const char* RouteModeName(RouteMode m) {
  switch (m) {
    case RouteMode::kAuto: return "auto";
    case RouteMode::kForceConflictFree: return "force-conflict-free";
    case RouteMode::kForceRewrite: return "force-rewrite";
    case RouteMode::kForceProver: return "force-prover";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Conjunctive decomposition.

namespace {

/// A predicate collected during the walk: bound over the schema of the node
/// it hung on, whose columns start at `base` of the concatenated schema.
struct PendingPred {
  const Expr* expr;
  size_t base;
};

Status WalkConjunctive(const PlanNode& node, size_t base,
                       ConjunctiveShape* shape,
                       std::vector<PendingPred>* preds) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      if (scan.emit_rowid()) {
        return Status::NotSupported("rowid scans are not conjunctive atoms");
      }
      ConjunctiveAtom atom;
      atom.table_id = scan.table_id();
      atom.table_name = scan.table_name();
      atom.alias = scan.alias();
      atom.offset = base;
      atom.width = scan.schema().NumColumns();
      atom.scan = &scan;
      shape->atoms.push_back(std::move(atom));
      return Status::OK();
    }
    case PlanKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(node);
      preds->push_back(PendingPred{&f.predicate(), base});
      return WalkConjunctive(node.child(0), base, shape, preds);
    }
    case PlanKind::kJoin: {
      const auto& j = static_cast<const JoinNode&>(node);
      preds->push_back(PendingPred{&j.condition(), base});
      HIPPO_RETURN_NOT_OK(WalkConjunctive(node.child(0), base, shape, preds));
      size_t left_width = node.child(0).schema().NumColumns();
      return WalkConjunctive(node.child(1), base + left_width, shape, preds);
    }
    case PlanKind::kProduct: {
      HIPPO_RETURN_NOT_OK(WalkConjunctive(node.child(0), base, shape, preds));
      size_t left_width = node.child(0).schema().NumColumns();
      return WalkConjunctive(node.child(1), base + left_width, shape, preds);
    }
    default:
      return Status::NotSupported(std::string("not a conjunctive plan: ") +
                                  PlanKindToString(node.kind()));
  }
}

/// Disjoint-set forest over global column positions.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// The atom whose column range contains global position `pos`.
size_t AtomOf(const ConjunctiveShape& shape, size_t pos) {
  for (size_t i = 0; i < shape.atoms.size(); ++i) {
    if (pos >= shape.atoms[i].offset &&
        pos < shape.atoms[i].offset + shape.atoms[i].width) {
      return i;
    }
  }
  HIPPO_CHECK_MSG(false, "column position outside every atom");
  return 0;
}

}  // namespace

std::vector<size_t> ConjunctiveShape::FreeClasses() const {
  std::vector<size_t> out;
  for (size_t pos : project_cols) {
    size_t c = class_of[pos];
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return out;
}

Result<ConjunctiveShape> DecomposeConjunctive(const PlanNode& plan) {
  ConjunctiveShape shape;
  const PlanNode* cur = &plan;
  if (cur->kind() == PlanKind::kSort) {
    shape.root_sort = static_cast<const SortNode*>(cur);
    cur = &cur->child(0);
  }
  if (cur->kind() != PlanKind::kProject) {
    return Status::NotSupported(
        "conjunctive decomposition expects a plan ending in a projection");
  }
  shape.project = static_cast<const ProjectNode*>(cur);

  std::vector<PendingPred> preds;
  HIPPO_RETURN_NOT_OK(
      WalkConjunctive(cur->child(0), 0, &shape, &preds));
  shape.total_width = cur->child(0).schema().NumColumns();
  shape.atom_local.resize(shape.atoms.size());

  // Projection expressions must be plain column references (the rewriting
  // has to trace every output value to a query variable).
  for (size_t i = 0; i < shape.project->NumExprs(); ++i) {
    const Expr& e = shape.project->expr(i);
    if (e.kind() != ExprKind::kColumnRef) {
      return Status::NotSupported(
          "projection computes an expression; not a conjunctive query "
          "over plain variables");
    }
    shape.project_cols.push_back(
        static_cast<size_t>(static_cast<const ColumnRefExpr&>(e).index()));
  }

  // Split every predicate into conjuncts and classify each as atom-local,
  // join equality (column = column across atoms), or unsupported.
  UnionFind uf(shape.total_width);
  for (const PendingPred& p : preds) {
    for (const Expr* conjunct : SplitConjuncts(*p.expr)) {
      std::vector<int> cols = CollectColumnIndexes(*conjunct);
      // Map to global positions.
      std::vector<size_t> global;
      global.reserve(cols.size());
      for (int c : cols) global.push_back(p.base + static_cast<size_t>(c));

      if (global.empty()) {
        // Constant conjunct: attach to atom 0 (a FALSE constant empties the
        // result on every route, so the placement does not matter).
        ExprPtr clone = conjunct->Clone();
        shape.atom_local[0].push_back(std::move(clone));
        continue;
      }
      size_t a0 = AtomOf(shape, global[0]);
      bool local = true;
      for (size_t g : global) {
        if (AtomOf(shape, g) != a0) { local = false; break; }
      }
      // Pure column = column equalities merge variable classes, whether
      // local or cross-atom (r.a = r.b means both positions carry the same
      // query variable).
      if (conjunct->kind() == ExprKind::kComparison) {
        const auto& cmp = static_cast<const ComparisonExpr&>(*conjunct);
        if (cmp.op() == CompareOp::kEq &&
            cmp.left().kind() == ExprKind::kColumnRef &&
            cmp.right().kind() == ExprKind::kColumnRef) {
          size_t l = p.base + static_cast<size_t>(
              static_cast<const ColumnRefExpr&>(cmp.left()).index());
          size_t r = p.base + static_cast<size_t>(
              static_cast<const ColumnRefExpr&>(cmp.right()).index());
          uf.Union(l, r);
          continue;  // re-established per atom below as implied locals
        }
      }
      if (!local) {
        return Status::NotSupported(
            "cross-atom predicate is not a column equality: " +
            conjunct->ToString());
      }
      // Local predicate: rebase onto the atom's scan schema.
      ExprPtr clone = conjunct->Clone();
      int delta = -static_cast<int>(shape.atoms[a0].offset);
      VisitColumnRefs(clone.get(),
                      [delta](ColumnRefExpr* ref) { ref->ShiftIndex(delta); });
      shape.atom_local[a0].push_back(std::move(clone));
    }
  }

  // Densify class ids in order of first position.
  shape.class_of.assign(shape.total_width, 0);
  std::unordered_map<size_t, size_t> dense;
  for (size_t pos = 0; pos < shape.total_width; ++pos) {
    size_t root = uf.Find(pos);
    auto it = dense.find(root);
    if (it == dense.end()) {
      it = dense.emplace(root, dense.size()).first;
      shape.class_rep.push_back(pos);
    }
    shape.class_of[pos] = it->second;
  }
  shape.num_classes = dense.size();

  // Re-establish equalities between same-class positions within one atom
  // as local predicates (chains through other atoms may otherwise lose
  // them when the rewriting picks one representative per class). SQL `=`
  // matches the original conjunction: the query satisfies only when every
  // chained value is non-NULL and equal.
  for (size_t a = 0; a < shape.atoms.size(); ++a) {
    const ConjunctiveAtom& atom = shape.atoms[a];
    std::unordered_map<size_t, size_t> first_local;  // class -> local col
    for (size_t c = 0; c < atom.width; ++c) {
      size_t cls = shape.class_of[atom.offset + c];
      auto it = first_local.find(cls);
      if (it == first_local.end()) {
        first_local.emplace(cls, c);
        continue;
      }
      TypeId t = atom.scan->schema().column(c).type;
      auto eq = std::make_unique<ComparisonExpr>(
          CompareOp::kEq,
          ColumnRefExpr::Bound(it->second,
                               atom.scan->schema().column(it->second).type),
          ColumnRefExpr::Bound(c, t));
      eq->set_result_type(TypeId::kBool);
      shape.atom_local[a].push_back(std::move(eq));
    }
  }
  return shape;
}

// ---------------------------------------------------------------------------
// Attack graph.

AttackGraph BuildAttackGraph(
    const std::vector<std::vector<size_t>>& key_classes,
    const std::vector<std::vector<size_t>>& var_classes,
    const std::vector<size_t>& free_classes, size_t num_classes) {
  AttackGraph g;
  g.num_atoms = key_classes.size();
  g.attacks.assign(g.num_atoms, std::vector<bool>(g.num_atoms, false));

  for (size_t f = 0; f < g.num_atoms; ++f) {
    // F+ : closure of key(F) ∪ free under key(G) → vars(G) for G != F.
    std::vector<char> plus(num_classes, 0);
    for (size_t c : key_classes[f]) plus[c] = 1;
    for (size_t c : free_classes) plus[c] = 1;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t gatom = 0; gatom < g.num_atoms; ++gatom) {
        if (gatom == f) continue;
        bool all = true;
        for (size_t c : key_classes[gatom]) {
          if (!plus[c]) { all = false; break; }
        }
        if (!all) continue;
        for (size_t c : var_classes[gatom]) {
          if (!plus[c]) { plus[c] = 1; changed = true; }
        }
      }
    }
    // BFS from F along shared non-F+ classes; intermediate atoms != F.
    auto share_outside_plus = [&](size_t a, size_t b) {
      for (size_t c : var_classes[a]) {
        if (plus[c]) continue;
        for (size_t d : var_classes[b]) {
          if (c == d) return true;
        }
      }
      return false;
    };
    std::vector<char> visited(g.num_atoms, 0);
    visited[f] = 1;
    std::vector<size_t> stack{f};
    while (!stack.empty()) {
      size_t h = stack.back();
      stack.pop_back();
      for (size_t h2 = 0; h2 < g.num_atoms; ++h2) {
        if (h2 == f || visited[h2]) continue;
        if (share_outside_plus(h, h2)) {
          visited[h2] = 1;
          g.attacks[f][h2] = true;
          stack.push_back(h2);
        }
      }
    }
  }

  // Cycle detection (DFS three-color).
  std::vector<int> color(g.num_atoms, 0);
  std::function<bool(size_t)> has_cycle = [&](size_t v) {
    color[v] = 1;
    for (size_t w = 0; w < g.num_atoms; ++w) {
      if (!g.attacks[v][w]) continue;
      if (color[w] == 1) return true;
      if (color[w] == 0 && has_cycle(w)) return true;
    }
    color[v] = 2;
    return false;
  };
  g.acyclic = true;
  for (size_t v = 0; v < g.num_atoms && g.acyclic; ++v) {
    if (color[v] == 0 && has_cycle(v)) g.acyclic = false;
  }
  return g;
}

std::optional<size_t> AttackGraph::UnattackedAtom() const {
  for (size_t f = 0; f < num_atoms; ++f) {
    bool attacked = false;
    for (size_t gatom = 0; gatom < num_atoms; ++gatom) {
      if (gatom != f && attacks[gatom][f]) { attacked = true; break; }
    }
    if (!attacked) return f;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Koutris–Wijsen table eligibility.

Result<std::vector<size_t>> KwKeyColumns(
    uint32_t table_id, const Catalog& catalog,
    const std::vector<DenialConstraint>& constraints,
    const std::vector<ForeignKeyConstraint>& foreign_keys) {
  const Table& table = catalog.table(table_id);
  for (const ForeignKeyConstraint& fk : foreign_keys) {
    if (fk.child_table() == table_id || fk.parent_table() == table_id) {
      return Status::NotSupported(
          "table " + table.name() +
          " participates in a foreign key; outside the primary-key class");
    }
  }
  const DenialConstraint* fd = nullptr;
  for (const DenialConstraint& dc : constraints) {
    bool touches = false;
    for (const ConstraintAtom& atom : dc.atoms()) {
      if (atom.table_id == table_id) { touches = true; break; }
    }
    if (!touches) continue;
    if (fd != nullptr) {
      return Status::NotSupported(
          "table " + table.name() +
          " has more than one constraint; outside the primary-key class");
    }
    if (!dc.fd_info().has_value() || dc.fd_info()->table_id != table_id) {
      return Status::NotSupported(
          "constraint " + dc.name() + " on table " + table.name() +
          " is not a functional dependency");
    }
    fd = &dc;
  }
  size_t ncols = table.schema().NumColumns();
  if (fd == nullptr) {
    // No constraint: no two distinct tuples conflict; key = whole row.
    std::vector<size_t> all(ncols);
    for (size_t i = 0; i < ncols; ++i) all[i] = i;
    return all;
  }
  const FdInfo& info = *fd->fd_info();
  std::vector<char> covered(ncols, 0);
  for (size_t c : info.lhs) covered[c] = 1;
  for (size_t c : info.rhs) covered[c] = 1;
  for (size_t i = 0; i < ncols; ++i) {
    if (!covered[i]) {
      return Status::NotSupported(
          "FD " + fd->name() + " does not cover table " + table.name() +
          " (not a primary key)");
    }
  }
  return info.lhs;
}

// ---------------------------------------------------------------------------
// Conflict-free route.

std::unordered_set<uint32_t> CollectPlanTables(const PlanNode& plan) {
  std::unordered_set<uint32_t> tables;
  std::function<void(const PlanNode&)> visit = [&](const PlanNode& node) {
    if (node.kind() == PlanKind::kScan) {
      tables.insert(static_cast<const ScanNode&>(node).table_id());
    }
    for (size_t i = 0; i < node.NumChildren(); ++i) visit(node.child(i));
  };
  visit(plan);
  return tables;
}

bool AnyEdgeTouchesTables(const ConflictHypergraph& graph,
                          const std::unordered_set<uint32_t>& tables) {
  for (ConflictHypergraph::EdgeId e = 0; e < graph.NumEdgeSlots(); ++e) {
    if (!graph.EdgeAlive(e)) continue;
    for (const RowId& v : graph.edge(e)) {
      if (tables.count(v.table) != 0) return true;
    }
  }
  return false;
}

bool TableConflictsAreCliques(const ConflictHypergraph& graph,
                              uint32_t table_id) {
  // Collect the binary same-table edges touching the table; any other edge
  // shape disqualifies (a KW-eligible table should only see its own FD).
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (ConflictHypergraph::EdgeId e = 0; e < graph.NumEdgeSlots(); ++e) {
    if (!graph.EdgeAlive(e)) continue;
    const std::vector<RowId>& vs = graph.edge(e);
    bool touches = false;
    for (const RowId& v : vs) {
      if (v.table == table_id) { touches = true; break; }
    }
    if (!touches) continue;
    if (vs.size() != 2 || vs[0].table != table_id ||
        vs[1].table != table_id) {
      return false;
    }
    edges.emplace_back(vs[0].row, vs[1].row);
  }
  if (edges.empty()) return true;

  // Union-find over the touched rows; a cluster graph has exactly
  // k(k-1)/2 distinct edges in every k-vertex component.
  std::unordered_map<uint32_t, size_t> index;
  for (const auto& [a, b] : edges) {
    index.emplace(a, index.size());
    index.emplace(b, index.size());
  }
  UnionFind uf(index.size());
  for (const auto& [a, b] : edges) uf.Union(index[a], index[b]);
  std::unordered_map<size_t, std::pair<size_t, size_t>> comp;  // root -> {V,E}
  for (const auto& [row, idx] : index) {
    (void)row;
    comp[uf.Find(idx)].first += 1;
  }
  for (const auto& [a, b] : edges) comp[uf.Find(index[a])].second += 1;
  for (const auto& [root, ve] : comp) {
    (void)root;
    if (ve.second != ve.first * (ve.first - 1) / 2) return false;
  }
  return true;
}

Status CheckConflictFreeRoutable(const PlanNode& plan) {
  std::function<Status(const PlanNode&)> inner =
      [&](const PlanNode& node) -> Status {
    switch (node.kind()) {
      case PlanKind::kScan:
        if (static_cast<const ScanNode&>(node).emit_rowid()) {
          return Status::NotSupported("rowid-emitting scans are internal");
        }
        return Status::OK();
      case PlanKind::kFilter:
      case PlanKind::kProject:
      case PlanKind::kProduct:
      case PlanKind::kJoin:
      case PlanKind::kUnion:
      case PlanKind::kDifference:
      case PlanKind::kIntersect: {
        for (size_t i = 0; i < node.NumChildren(); ++i) {
          HIPPO_RETURN_NOT_OK(inner(node.child(i)));
        }
        return Status::OK();
      }
      case PlanKind::kAntiJoin:
        return Status::NotSupported("anti-joins are not in the input class");
      case PlanKind::kSort:
        return Status::NotSupported("ORDER BY is only allowed at the top");
      case PlanKind::kAggregate:
        return Status::NotSupported(
            "aggregates route through range-consistent aggregation");
    }
    return Status::Internal("unknown plan kind");
  };
  const PlanNode* cur = &plan;
  if (cur->kind() == PlanKind::kSort) cur = &cur->child(0);
  return inner(*cur);
}

// ---------------------------------------------------------------------------
// Classifier.

namespace {

Result<RouteDecision> TryRewriteRoute(
    const PlanNode& plan, const Catalog& catalog,
    const std::vector<DenialConstraint>& constraints,
    const std::vector<ForeignKeyConstraint>* foreign_keys,
    const ConflictHypergraph* graph) {
  rewriting::QueryRewriter rewriter(
      catalog, constraints,
      foreign_keys != nullptr ? *foreign_keys
                              : std::vector<ForeignKeyConstraint>{});
  rewriting::RewriteInfo info;
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr rewritten, rewriter.Rewrite(plan, &info));
  RouteDecision decision;
  if (info.method == rewriting::RewriteMethod::kAbc) {
    decision.kind = RouteKind::kRewriteAbc;
    decision.reason =
        "quantifier-free plan over universal binary constraints "
        "(Arenas-Bertossi-Chomicki residues)";
  } else {
    // The KW certain-rewriting is complete only when every quantified
    // table's conflicts form clique blocks (see TableConflictsAreCliques).
    if (graph == nullptr && !info.kw_fd_tables.empty()) {
      return Status::NotSupported(
          "Koutris-Wijsen route needs the conflict hypergraph to validate "
          "the block structure");
    }
    for (uint32_t t : info.kw_fd_tables) {
      if (!TableConflictsAreCliques(*graph, t)) {
        return Status::NotSupported(
            "table " + catalog.table(t).name() +
            " has NULL-induced non-clique conflict blocks; certain "
            "rewriting would be incomplete");
      }
    }
    decision.kind = RouteKind::kRewriteKw;
    decision.reason =
        "self-join-free primary-key query with an acyclic attack graph "
        "(Koutris-Wijsen certain rewriting)";
  }
  decision.rewritten = std::move(rewritten);
  return decision;
}

}  // namespace

Result<RouteDecision> ClassifyRoute(
    const PlanNode& plan, const Catalog& catalog,
    const std::vector<DenialConstraint>* constraints,
    const std::vector<ForeignKeyConstraint>* foreign_keys,
    const ConflictHypergraph* graph, RouteMode mode) {
  switch (mode) {
    case RouteMode::kForceConflictFree: {
      HIPPO_RETURN_NOT_OK(CheckConflictFreeRoutable(plan));
      if (graph == nullptr) {
        return Status::NotSupported(
            "conflict-free route needs a conflict hypergraph");
      }
      if (AnyEdgeTouchesTables(*graph, CollectPlanTables(plan))) {
        return Status::NotSupported(
            "live conflicts touch the plan's tables; plain evaluation "
            "would not be the certain answer");
      }
      RouteDecision d;
      d.kind = RouteKind::kConflictFree;
      d.reason = "forced; no live conflict touches the plan's tables";
      return d;
    }
    case RouteMode::kForceRewrite: {
      if (constraints == nullptr) {
        return Status::NotSupported(
            "rewrite route needs the constraint catalog");
      }
      return TryRewriteRoute(plan, catalog, *constraints, foreign_keys,
                             graph);
    }
    case RouteMode::kForceProver: {
      HIPPO_RETURN_NOT_OK(CheckSjudSupported(plan));
      RouteDecision d;
      d.kind = RouteKind::kProver;
      d.reason = "forced";
      return d;
    }
    case RouteMode::kAuto:
      break;
  }

  // Auto: conflict-free → rewriting → prover, cheapest sound route first.
  if (graph != nullptr && CheckConflictFreeRoutable(plan).ok() &&
      !AnyEdgeTouchesTables(*graph, CollectPlanTables(plan))) {
    RouteDecision d;
    d.kind = RouteKind::kConflictFree;
    d.reason =
        "no live conflict touches the plan's tables; the instance "
        "restricted to them is its own unique repair";
    return d;
  }
  std::string rewrite_reason = "no constraint catalog";
  if (constraints != nullptr) {
    Result<RouteDecision> rewrite =
        TryRewriteRoute(plan, catalog, *constraints, foreign_keys, graph);
    if (rewrite.ok()) return rewrite;
    rewrite_reason = rewrite.status().message();
  }
  HIPPO_RETURN_NOT_OK(CheckSjudSupported(plan));
  RouteDecision d;
  d.kind = RouteKind::kProver;
  d.reason = "fallback (" + rewrite_reason + ")";
  return d;
}

}  // namespace hippo
