// Query router: classifies a bound SJUD plan into the cheapest *sound*
// engine for consistent query answering (DESIGN.md §6).
//
// Three routes exist, in decreasing order of preference:
//
//   1. kConflictFree — no live hyperedge touches any table the plan reads,
//      so every base fact involved is in every repair and plain evaluation
//      of the original plan *is* the certain answer. O(query) — no
//      per-candidate work at all.
//   2. kRewriteAbc / kRewriteKw — the query is first-order rewritable:
//      plain evaluation of a rewritten plan returns the certain answers.
//      ABC (Arenas–Bertossi–Chomicki) covers quantifier-free conjunctive
//      plans (safe projection) under universal binary constraints;
//      Koutris–Wijsen covers self-join-free conjunctive queries with
//      narrowing projection over single-key tables when the attack graph
//      is acyclic.
//   3. kProver — the paper's envelope → candidates → HProver pipeline, the
//      sound fallback for everything CheckSjudSupported admits.
//
// The classifier is *exact* for the rewriting class by construction: route
// eligibility is decided by attempting the rewrite itself (the decision
// carries the rewritten plan), so the classifier and the rewriter cannot
// drift apart.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "constraints/foreign_key.h"
#include "hypergraph/hypergraph.h"
#include "plan/logical_plan.h"

namespace hippo {

/// Which engine a query was (or must be) dispatched to.
enum class RouteKind : uint8_t {
  kNone = 0,       ///< not yet routed
  kConflictFree,   ///< plain evaluation (no conflicts touch the plan's tables)
  kRewriteAbc,     ///< first-order rewriting, Arenas–Bertossi–Chomicki residues
  kRewriteKw,      ///< first-order rewriting, Koutris–Wijsen certain rewriting
  kProver,         ///< envelope + knowledge gathering + HProver
};

/// Route override in HippoOptions: kAuto picks the cheapest sound route;
/// the force modes pin one route and fail with NotSupported when that route
/// cannot soundly serve the query.
enum class RouteMode : uint8_t {
  kAuto = 0,
  kForceConflictFree,
  kForceRewrite,
  kForceProver,
};

const char* RouteKindName(RouteKind k);
const char* RouteModeName(RouteMode m);

/// The classifier's verdict: the chosen route, a one-line justification,
/// and — for rewrite routes — the plan whose plain evaluation returns the
/// certain answers.
struct RouteDecision {
  RouteKind kind = RouteKind::kNone;
  std::string reason;
  PlanNodePtr rewritten;  ///< set iff kind is kRewriteAbc / kRewriteKw
};

// ---------------------------------------------------------------------------
// Building blocks (exposed for unit tests and the rewriter).

/// One atom of a conjunctive plan: a base-table scan occupying columns
/// [offset, offset+width) of the concatenated join schema.
struct ConjunctiveAtom {
  uint32_t table_id = 0;
  std::string table_name;
  std::string alias;
  size_t offset = 0;
  size_t width = 0;
  const ScanNode* scan = nullptr;  ///< borrowed from the analyzed plan
};

/// A conjunctive (select-project-join) plan in normal form. Produced by
/// DecomposeConjunctive; consumed by the Koutris–Wijsen rewriter and the
/// attack-graph test.
struct ConjunctiveShape {
  std::vector<ConjunctiveAtom> atoms;
  size_t total_width = 0;

  /// Per-atom local predicates, bound over that atom's scan schema
  /// (indexes 0..width). Includes implied intra-atom equalities from the
  /// join equivalence classes and any constant (column-free) conjuncts
  /// (attached to atom 0; a FALSE constant empties the result through any
  /// route, so the placement is semantically irrelevant).
  std::vector<std::vector<ExprPtr>> atom_local;

  /// Variable equivalence classes over global column positions: two
  /// positions share a class iff chained by join equalities. class_of has
  /// one entry per global position.
  std::vector<size_t> class_of;
  size_t num_classes = 0;
  /// A representative global position per class (the smallest).
  std::vector<size_t> class_rep;

  /// Output columns of the root projection, as global positions (the
  /// projection expressions are required to be plain column references).
  std::vector<size_t> project_cols;
  const ProjectNode* project = nullptr;  ///< borrowed: output names/types
  const SortNode* root_sort = nullptr;   ///< borrowed: optional ORDER BY

  /// Classes of the projected columns, deduplicated, in first-use order.
  std::vector<size_t> FreeClasses() const;
};

/// Decomposes Sort?(Project(joins/filters/scans)) into ConjunctiveShape.
/// NotSupported when the plan is not conjunctive (set operations,
/// anti-joins, aggregates, rowid scans, computed projections) or when a
/// cross-atom predicate is anything but a column=column equality.
Result<ConjunctiveShape> DecomposeConjunctive(const PlanNode& plan);

/// The Koutris–Wijsen attack graph over the atoms of a self-join-free
/// conjunctive query. attacks[f][g] is true when atom f attacks atom g:
/// there is a path f = a0, a1, ..., ak = g (intermediate atoms distinct
/// from f) where consecutive atoms share a variable class outside F+, the
/// closure of key(f) ∪ free variables under the key-to-variables
/// dependencies of the *other* atoms.
struct AttackGraph {
  size_t num_atoms = 0;
  std::vector<std::vector<bool>> attacks;  ///< [from][to], from != to
  bool acyclic = true;

  /// An atom no other atom attacks (the recursion pivot of the rewriting);
  /// std::nullopt iff every atom is attacked (implies a cycle).
  std::optional<size_t> UnattackedAtom() const;
};

/// Builds the attack graph from per-atom key/variable classes and the free
/// (projected) classes. key_classes[i] ⊆ var_classes[i] for every atom.
AttackGraph BuildAttackGraph(
    const std::vector<std::vector<size_t>>& key_classes,
    const std::vector<std::vector<size_t>>& var_classes,
    const std::vector<size_t>& free_classes, size_t num_classes);

/// The primary-key column indexes of `table_id` for the Koutris–Wijsen
/// class: the table must have either no constraints at all (key = whole
/// row; no two distinct tuples conflict) or exactly one constraint, an FD
/// whose lhs ∪ rhs covers every column (a primary key), and must not play
/// a role in any foreign key. NotSupported otherwise.
Result<std::vector<size_t>> KwKeyColumns(
    uint32_t table_id, const Catalog& catalog,
    const std::vector<DenialConstraint>& constraints,
    const std::vector<ForeignKeyConstraint>& foreign_keys);

/// Base-table ids read by the plan.
std::unordered_set<uint32_t> CollectPlanTables(const PlanNode& plan);

/// True when some live hyperedge has a vertex in one of `tables`.
bool AnyEdgeTouchesTables(const ConflictHypergraph& graph,
                          const std::unordered_set<uint32_t>& tables);

/// True when the live conflicts touching `table_id` form a disjoint union
/// of same-table cliques (a cluster graph). This is the completeness gate
/// for the Koutris–Wijsen route under SQL NULLs: the detector's NULL
/// semantics can leave a key block with a *non-transitive* conflict graph
/// (t1 conflicts t2, t2 conflicts t3, but t1 and t3 agree because a NULL
/// hides the difference), and on such instances "every repair contains a
/// good tuple" is no longer first-order expressible — the certain-answer
/// rewriting would silently drop answers. Clique blocks restore the
/// classic one-choice-per-block repair structure the KW theorem needs.
/// False also when an edge touching the table is not a same-table binary
/// edge (unexpected for a KW-eligible table; the caller falls back).
bool TableConflictsAreCliques(const ConflictHypergraph& graph,
                              uint32_t table_id);

/// The relaxed admission test for the conflict-free route: like
/// CheckSjudSupported but narrowing / computed projections are allowed
/// (plain evaluation needs no candidate-to-base-tuple traceability).
/// Aggregates, rowid scans and inner sorts stay rejected.
Status CheckConflictFreeRoutable(const PlanNode& plan);

// ---------------------------------------------------------------------------

/// Classifies `plan` under `mode`. `constraints` / `foreign_keys` may be
/// null (rewriting unavailable); `graph` may be null (conflict-free route
/// unavailable). In kAuto the order is conflict-free → rewriting → prover;
/// a forced mode returns NotSupported when its route is unsound for the
/// query.
Result<RouteDecision> ClassifyRoute(
    const PlanNode& plan, const Catalog& catalog,
    const std::vector<DenialConstraint>* constraints,
    const std::vector<ForeignKeyConstraint>* foreign_keys,
    const ConflictHypergraph* graph, RouteMode mode);

}  // namespace hippo
