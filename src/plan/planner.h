// The planner: turns parsed SQL query ASTs into bound logical plans.
//
// SELECT cores are planned as a left-deep join tree over the FROM atoms with
// conjunct pushdown: WHERE/ON conjuncts touching a single atom become filters
// below the joins; conjuncts spanning atoms become join conditions at the
// step where their last atom enters the tree (so equi-joins can execute as
// hash joins instead of filtered cartesian products).
#pragma once

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"

namespace hippo {

class Planner {
 public:
  explicit Planner(const Catalog& catalog) : catalog_(catalog) {}

  /// Plans a full SELECT statement (query expression + optional ORDER BY).
  Result<PlanNodePtr> PlanSelect(const sql::SelectStmt& stmt);

  /// Plans a query expression (no ORDER BY).
  Result<PlanNodePtr> PlanQueryExpr(const sql::QueryExpr& query);

  /// Plans a single SELECT core.
  Result<PlanNodePtr> PlanSelectCore(const sql::SelectCore& core);

 private:
  const Catalog& catalog_;
};

}  // namespace hippo
