// Classification of plans into the query class supported by the CQA engine.
//
// Hippo computes consistent answers for SJUD queries: selection, join /
// cartesian product, union, difference (and intersection, which is
// expressible from them), plus projection only when it introduces no
// existential quantifier — i.e. the projection is a permutation / renaming
// that keeps every input column, so a result tuple determines the base
// tuples that produced it. Anything else (computed columns, narrowing
// projections, aggregates) is rejected with NotSupported, matching the
// paper: CQA for queries with real projection is co-NP-data-complete.
#pragma once

#include "common/status.h"
#include "plan/logical_plan.h"

namespace hippo {

/// True iff the projection keeps every input column (all expressions are
/// plain column references and together they cover the child schema).
/// Duplicate references are fine — `SELECT a, a, b FROM t(a, b)` still
/// covers every column, and a duplicating permutation keeps the result
/// tuple ↔ base tuple correspondence that makes the projection safe; what
/// disqualifies a projection is *dropping* a column (existential
/// quantification) or computing a non-column expression.
bool IsSafeProjection(const ProjectNode& project);

/// OK iff the plan is in the supported SJUD class. A SortNode is permitted
/// at the root only (ordering does not affect answer membership). Filter
/// and join predicates may use any scalar expression kind (comparison,
/// logical, arithmetic, IS NULL, literals, column refs) but not aggregate
/// calls, which have no per-tuple meaning inside a predicate.
Status CheckSjudSupported(const PlanNode& plan);

}  // namespace hippo
