#include "plan/logical_plan.h"

#include "common/str_util.h"

namespace hippo {

const char* PlanKindToString(PlanKind k) {
  switch (k) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kProduct:
      return "Product";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAntiJoin:
      return "AntiJoin";
    case PlanKind::kUnion:
      return "Union";
    case PlanKind::kDifference:
      return "Difference";
    case PlanKind::kIntersect:
      return "Intersect";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kAggregate:
      return "Aggregate";
  }
  return "?";
}

namespace {

void Render(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.NodeLabel());
  out->append("\n");
  for (size_t i = 0; i < node.NumChildren(); ++i) {
    Render(node.child(i), depth + 1, out);
  }
}

}  // namespace

std::string PlanNode::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

// Scan ----------------------------------------------------------------------

PlanNodePtr ScanNode::Make(uint32_t table_id, const std::string& table_name,
                           const std::string& alias,
                           const Schema& table_schema, bool emit_rowid) {
  Schema schema = table_schema.WithQualifier(alias);
  if (emit_rowid) {
    schema.AddColumn(Column("$rowid", TypeId::kInt, alias));
  }
  return std::make_unique<ScanNode>(table_id, table_name, alias,
                                    std::move(schema), emit_rowid);
}

PlanNodePtr ScanNode::Clone() const {
  return std::make_unique<ScanNode>(table_id_, table_name_, alias_, schema(),
                                    emit_rowid_);
}

std::string ScanNode::NodeLabel() const {
  std::string out = "Scan " + table_name_;
  if (alias_ != table_name_) out += " AS " + alias_;
  if (emit_rowid_) out += " [rowid]";
  return out;
}

// Filter ----------------------------------------------------------------------

namespace {
std::vector<PlanNodePtr> One(PlanNodePtr a) {
  std::vector<PlanNodePtr> v;
  v.push_back(std::move(a));
  return v;
}
std::vector<PlanNodePtr> Two(PlanNodePtr a, PlanNodePtr b) {
  std::vector<PlanNodePtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return v;
}
}  // namespace

FilterNode::FilterNode(PlanNodePtr child, ExprPtr predicate)
    : PlanNode(PlanKind::kFilter, Schema(), One(std::move(child))),
      predicate_(std::move(predicate)) {
  set_schema(this->child(0).schema());
  HIPPO_DCHECK(predicate_->IsBound());
}

PlanNodePtr FilterNode::Clone() const {
  return std::make_unique<FilterNode>(child(0).Clone(), predicate_->Clone());
}

std::string FilterNode::NodeLabel() const {
  return "Filter " + predicate_->ToString();
}

// Project ---------------------------------------------------------------------

ProjectNode::ProjectNode(PlanNodePtr child, std::vector<ExprPtr> exprs,
                         Schema schema)
    : PlanNode(PlanKind::kProject, std::move(schema), One(std::move(child))),
      exprs_(std::move(exprs)) {}

PlanNodePtr ProjectNode::Clone() const {
  std::vector<ExprPtr> exprs;
  exprs.reserve(exprs_.size());
  for (const auto& e : exprs_) exprs.push_back(e->Clone());
  return std::make_unique<ProjectNode>(child(0).Clone(), std::move(exprs),
                                       schema());
}

std::string ProjectNode::NodeLabel() const {
  std::string out = "Project [";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
    out += " AS " + schema().column(i).name;
  }
  out += "]";
  return out;
}

// Product / Join / AntiJoin ---------------------------------------------------

ProductNode::ProductNode(PlanNodePtr left, PlanNodePtr right)
    : PlanNode(PlanKind::kProduct, Schema(),
               Two(std::move(left), std::move(right))) {
  set_schema(Schema::Concat(child(0).schema(), child(1).schema()));
}

PlanNodePtr ProductNode::Clone() const {
  return std::make_unique<ProductNode>(child(0).Clone(), child(1).Clone());
}

JoinNode::JoinNode(PlanNodePtr left, PlanNodePtr right, ExprPtr condition)
    : PlanNode(PlanKind::kJoin, Schema(),
               Two(std::move(left), std::move(right))),
      condition_(std::move(condition)) {
  set_schema(Schema::Concat(child(0).schema(), child(1).schema()));
  HIPPO_DCHECK(condition_->IsBound());
}

PlanNodePtr JoinNode::Clone() const {
  return std::make_unique<JoinNode>(child(0).Clone(), child(1).Clone(),
                                    condition_->Clone());
}

std::string JoinNode::NodeLabel() const {
  return "Join ON " + condition_->ToString();
}

AntiJoinNode::AntiJoinNode(PlanNodePtr left, PlanNodePtr right,
                           ExprPtr condition)
    : PlanNode(PlanKind::kAntiJoin, Schema(),
               Two(std::move(left), std::move(right))),
      condition_(std::move(condition)) {
  set_schema(child(0).schema());
  HIPPO_DCHECK(condition_->IsBound());
}

PlanNodePtr AntiJoinNode::Clone() const {
  return std::make_unique<AntiJoinNode>(child(0).Clone(), child(1).Clone(),
                                        condition_->Clone());
}

std::string AntiJoinNode::NodeLabel() const {
  return "AntiJoin ON " + condition_->ToString();
}

// Set operations --------------------------------------------------------------

namespace {

Schema SetOpSchema(const Schema& left) {
  // Output columns take the left side's names, unqualified.
  Schema out;
  for (const Column& c : left.columns()) {
    out.AddColumn(Column(c.name, c.type, ""));
  }
  return out;
}

}  // namespace

SetOpNode::SetOpNode(PlanKind kind, PlanNodePtr left, PlanNodePtr right)
    : PlanNode(kind, Schema(), Two(std::move(left), std::move(right))) {
  set_schema(SetOpSchema(child(0).schema()));
  HIPPO_DCHECK(kind == PlanKind::kUnion || kind == PlanKind::kDifference ||
               kind == PlanKind::kIntersect);
  HIPPO_DCHECK(child(0).schema().UnionCompatible(child(1).schema()));
}

PlanNodePtr SetOpNode::Clone() const {
  return std::make_unique<SetOpNode>(kind(), child(0).Clone(),
                                     child(1).Clone());
}

// Aggregate -------------------------------------------------------------------

AggregateNode::AggregateNode(PlanNodePtr child,
                             std::vector<ExprPtr> group_exprs,
                             std::vector<std::string> group_names,
                             std::vector<AggSpec> aggs)
    : PlanNode(PlanKind::kAggregate, Schema(), One(std::move(child))),
      group_exprs_(std::move(group_exprs)),
      group_names_(std::move(group_names)),
      aggs_(std::move(aggs)) {
  HIPPO_DCHECK(group_exprs_.size() == group_names_.size());
  Schema schema;
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    HIPPO_DCHECK(group_exprs_[i]->IsBound());
    schema.AddColumn(Column(group_names_[i], group_exprs_[i]->result_type()));
  }
  for (const AggSpec& a : aggs_) {
    TypeId t;
    switch (a.fn) {
      case AggFunc::kCount:
        t = TypeId::kInt;
        break;
      case AggFunc::kAvg:
        t = TypeId::kDouble;
        break;
      default:
        t = a.arg == nullptr ? TypeId::kInt : a.arg->result_type();
        break;
    }
    schema.AddColumn(Column(a.name, t));
  }
  set_schema(std::move(schema));
}

PlanNodePtr AggregateNode::Clone() const {
  std::vector<ExprPtr> groups;
  groups.reserve(group_exprs_.size());
  for (const auto& e : group_exprs_) groups.push_back(e->Clone());
  std::vector<AggSpec> aggs;
  aggs.reserve(aggs_.size());
  for (const AggSpec& a : aggs_) {
    aggs.push_back(AggSpec{a.fn, a.arg == nullptr ? nullptr : a.arg->Clone(),
                           a.name});
  }
  return std::make_unique<AggregateNode>(child(0).Clone(), std::move(groups),
                                         group_names_, std::move(aggs));
}

std::string AggregateNode::NodeLabel() const {
  std::string out = "Aggregate [";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "][";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::string(AggFuncToString(aggs_[i].fn)) + "(" +
           (aggs_[i].arg == nullptr ? "*" : aggs_[i].arg->ToString()) + ")";
  }
  out += "]";
  return out;
}

// Sort ------------------------------------------------------------------------

SortNode::SortNode(PlanNodePtr child, std::vector<Key> keys)
    : PlanNode(PlanKind::kSort, Schema(), One(std::move(child))),
      keys_(std::move(keys)) {
  set_schema(this->child(0).schema());
}

PlanNodePtr SortNode::Clone() const {
  std::vector<Key> keys;
  keys.reserve(keys_.size());
  for (const auto& k : keys_) keys.push_back(Key{k.expr->Clone(), k.ascending});
  return std::make_unique<SortNode>(child(0).Clone(), std::move(keys));
}

std::string SortNode::NodeLabel() const {
  std::string out = "Sort [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    out += keys_[i].ascending ? " ASC" : " DESC";
  }
  out += "]";
  return out;
}

}  // namespace hippo
