#include "plan/planner.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"
#include "expr/binder.h"

namespace hippo {

namespace {

/// One FROM atom after flattening `a, b JOIN c ON ...` lists.
struct Atom {
  sql::TableRef ref;
  const Table* table = nullptr;
  size_t offset = 0;  ///< first column index in the full concatenated schema
  size_t width = 0;
};

/// A WHERE/ON conjunct with its placement information.
struct Conjunct {
  ExprPtr expr;        ///< bound over the full concatenated schema
  int last_atom = -1;  ///< max atom index referenced; -1 = constant
  bool single_atom = false;
};

int AtomOfIndex(const std::vector<Atom>& atoms, int col_index) {
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (static_cast<size_t>(col_index) < atoms[i].offset + atoms[i].width) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Canonical key for matching select-item expressions against GROUP BY
/// expressions: bound column references compare by ordinal (so `a` and
/// `t.a` match), everything else by its rendered form.
std::string GroupMatchKey(const Expr& e) {
  if (e.kind() == ExprKind::kColumnRef) {
    const auto& ref = static_cast<const ColumnRefExpr&>(e);
    return "#" + std::to_string(ref.index());
  }
  return e.ToString();
}

/// Plans the aggregation tail of a SELECT core: an AggregateNode over the
/// join tree, an optional HAVING filter, and a projection of the select
/// items rewritten to reference the aggregate's output columns.
Result<PlanNodePtr> PlanAggregation(const sql::SelectCore& core,
                                    PlanNodePtr input) {
  const Schema& in_schema = input->schema();
  ExprBinder group_binder(in_schema);
  ExprBinder agg_binder(in_schema);
  agg_binder.set_allow_aggregates(true);

  // 1. Bind the GROUP BY expressions (aggregates are not allowed there).
  std::vector<ExprPtr> group_exprs;
  std::vector<std::string> group_names;
  std::vector<std::string> group_keys;  // canonical ToString for matching
  for (const ExprPtr& g : core.group_by) {
    ExprPtr bound = g->Clone();
    HIPPO_RETURN_NOT_OK(group_binder.Bind(bound.get()));
    std::string name;
    if (bound->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*bound);
      name = in_schema.column(static_cast<size_t>(ref.index())).name;
    } else {
      name = StrFormat("group%zu", group_exprs.size() + 1);
    }
    group_keys.push_back(GroupMatchKey(*bound));
    group_names.push_back(std::move(name));
    group_exprs.push_back(std::move(bound));
  }

  // 2. Bind select items / HAVING and collect the distinct aggregate calls.
  struct BoundItem {
    ExprPtr expr;
    std::string alias;
  };
  std::vector<BoundItem> items;
  for (const sql::SelectItem& item : core.items) {
    if (item.star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with GROUP BY or aggregates; list "
          "the grouped columns explicitly");
    }
    ExprPtr bound = item.expr->Clone();
    HIPPO_RETURN_NOT_OK(agg_binder.Bind(bound.get()));
    items.push_back(BoundItem{std::move(bound), item.alias});
  }
  ExprPtr having;
  if (core.having != nullptr) {
    having = core.having->Clone();
    HIPPO_RETURN_NOT_OK(agg_binder.BindPredicate(having.get()));
  }

  std::vector<AggregateNode::AggSpec> specs;
  std::vector<std::string> spec_keys;
  auto collect_aggs = [&](const Expr& root) {
    // Walk the tree; AggCallExpr cannot nest (binder rejects), so a simple
    // recursive scan suffices.
    auto walk = [&](auto&& self, const Expr& e) -> void {
      if (e.kind() == ExprKind::kAggCall) {
        const auto& agg = static_cast<const AggCallExpr&>(e);
        std::string key = agg.ToString();
        for (const std::string& existing : spec_keys) {
          if (existing == key) return;
        }
        spec_keys.push_back(key);
        specs.push_back(AggregateNode::AggSpec{
            agg.fn(), agg.is_count_star() ? nullptr : agg.arg().Clone(),
            key});
        return;
      }
      switch (e.kind()) {
        case ExprKind::kComparison: {
          const auto& c = static_cast<const ComparisonExpr&>(e);
          self(self, c.left());
          self(self, c.right());
          return;
        }
        case ExprKind::kLogical: {
          const auto& l = static_cast<const LogicalExpr&>(e);
          for (size_t i = 0; i < l.NumChildren(); ++i) self(self, l.child(i));
          return;
        }
        case ExprKind::kArithmetic: {
          const auto& a = static_cast<const ArithmeticExpr&>(e);
          self(self, a.left());
          self(self, a.right());
          return;
        }
        case ExprKind::kIsNull:
          self(self, static_cast<const IsNullExpr&>(e).child());
          return;
        default:
          return;
      }
    };
    walk(walk, root);
  };
  for (const BoundItem& item : items) collect_aggs(*item.expr);
  if (having != nullptr) collect_aggs(*having);

  // 3. The aggregate's output schema: group columns then aggregate columns.
  auto agg_output_type = [](const AggregateNode::AggSpec& s) {
    switch (s.fn) {
      case AggFunc::kCount:
        return TypeId::kInt;
      case AggFunc::kAvg:
        return TypeId::kDouble;
      default:
        return s.arg == nullptr ? TypeId::kInt : s.arg->result_type();
    }
  };

  // Rewrites a bound expression over the input schema into one over the
  // aggregate output: group expressions and aggregate calls become column
  // references; anything else must decompose into those.
  auto rewrite = [&](auto&& self, const Expr& e) -> Result<ExprPtr> {
    std::string key = GroupMatchKey(e);
    for (size_t i = 0; i < group_keys.size(); ++i) {
      if (group_keys[i] == key) {
        return ColumnRefExpr::Bound(i, group_exprs[i]->result_type(),
                                    group_names[i]);
      }
    }
    if (e.kind() == ExprKind::kAggCall) {
      for (size_t s = 0; s < spec_keys.size(); ++s) {
        if (spec_keys[s] == key) {
          return ColumnRefExpr::Bound(group_exprs.size() + s,
                                      agg_output_type(specs[s]), spec_keys[s]);
        }
      }
      return Status::Internal("aggregate call not collected: " + key);
    }
    switch (e.kind()) {
      case ExprKind::kLiteral:
        return e.Clone();
      case ExprKind::kColumnRef:
        return Status::InvalidArgument(
            "column " + e.ToString() +
            " must appear in GROUP BY or inside an aggregate");
      case ExprKind::kComparison: {
        const auto& c = static_cast<const ComparisonExpr&>(e);
        HIPPO_ASSIGN_OR_RETURN(ExprPtr l, self(self, c.left()));
        HIPPO_ASSIGN_OR_RETURN(ExprPtr r, self(self, c.right()));
        auto out = std::make_unique<ComparisonExpr>(c.op(), std::move(l),
                                                    std::move(r));
        out->set_result_type(TypeId::kBool);
        return ExprPtr(std::move(out));
      }
      case ExprKind::kLogical: {
        const auto& l = static_cast<const LogicalExpr&>(e);
        std::vector<ExprPtr> children;
        for (size_t i = 0; i < l.NumChildren(); ++i) {
          HIPPO_ASSIGN_OR_RETURN(ExprPtr c, self(self, l.child(i)));
          children.push_back(std::move(c));
        }
        auto out = std::make_unique<LogicalExpr>(l.op(), std::move(children));
        out->set_result_type(TypeId::kBool);
        return ExprPtr(std::move(out));
      }
      case ExprKind::kArithmetic: {
        const auto& a = static_cast<const ArithmeticExpr&>(e);
        HIPPO_ASSIGN_OR_RETURN(ExprPtr l, self(self, a.left()));
        HIPPO_ASSIGN_OR_RETURN(ExprPtr r, self(self, a.right()));
        auto out = std::make_unique<ArithmeticExpr>(a.op(), std::move(l),
                                                    std::move(r));
        out->set_result_type(e.result_type());
        return ExprPtr(std::move(out));
      }
      case ExprKind::kIsNull: {
        const auto& n = static_cast<const IsNullExpr&>(e);
        HIPPO_ASSIGN_OR_RETURN(ExprPtr c, self(self, n.child()));
        auto out = std::make_unique<IsNullExpr>(std::move(c), n.negated());
        out->set_result_type(TypeId::kBool);
        return ExprPtr(std::move(out));
      }
      default:
        return Status::Internal("unexpected expression kind in aggregation");
    }
  };

  std::vector<ExprPtr> proj_exprs;
  Schema out_schema;
  for (size_t i = 0; i < items.size(); ++i) {
    HIPPO_ASSIGN_OR_RETURN(ExprPtr e, rewrite(rewrite, *items[i].expr));
    std::string name = items[i].alias;
    if (name.empty()) {
      if (items[i].expr->kind() == ExprKind::kColumnRef) {
        const auto& ref = static_cast<const ColumnRefExpr&>(*items[i].expr);
        name = in_schema.column(static_cast<size_t>(ref.index())).name;
      } else if (items[i].expr->kind() == ExprKind::kAggCall) {
        name = ToLower(AggFuncToString(
            static_cast<const AggCallExpr&>(*items[i].expr).fn()));
      } else {
        name = StrFormat("col%zu", i + 1);
      }
    }
    out_schema.AddColumn(Column(std::move(name), e->result_type()));
    proj_exprs.push_back(std::move(e));
  }
  ExprPtr having_rewritten;
  if (having != nullptr) {
    HIPPO_ASSIGN_OR_RETURN(having_rewritten, rewrite(rewrite, *having));
  }

  PlanNodePtr plan = std::make_unique<AggregateNode>(
      std::move(input), std::move(group_exprs), std::move(group_names),
      std::move(specs));
  if (having_rewritten != nullptr) {
    plan = std::make_unique<FilterNode>(std::move(plan),
                                        std::move(having_rewritten));
  }
  return PlanNodePtr(std::make_unique<ProjectNode>(
      std::move(plan), std::move(proj_exprs), std::move(out_schema)));
}

}  // namespace

Result<PlanNodePtr> Planner::PlanSelectCore(const sql::SelectCore& core) {
  // 1. Flatten FROM items into an atom list; remember each ON condition and
  //    the atom index it is attached to.
  std::vector<Atom> atoms;
  std::vector<std::pair<const Expr*, int>> on_conditions;  // (unbound, atom)
  std::vector<ExprPtr> bound_on;  // keeps ownership of bound clones
  struct PendingOn {
    const sql::JoinClause* clause;
    int atom_index;
  };
  std::vector<PendingOn> pending_on;

  for (const sql::FromItem& item : core.from) {
    {
      Atom a;
      a.ref = item.base;
      HIPPO_ASSIGN_OR_RETURN(const Table* t,
                             catalog_.GetTable(item.base.table));
      a.table = t;
      atoms.push_back(std::move(a));
    }
    for (const sql::JoinClause& jc : item.joins) {
      Atom a;
      a.ref = jc.table;
      HIPPO_ASSIGN_OR_RETURN(const Table* t, catalog_.GetTable(jc.table.table));
      a.table = t;
      atoms.push_back(std::move(a));
      pending_on.push_back(
          PendingOn{&jc, static_cast<int>(atoms.size()) - 1});
    }
  }
  if (atoms.empty()) {
    return Status::InvalidArgument("query has no FROM clause atoms");
  }

  // 2. Alias uniqueness and the full concatenated schema.
  std::unordered_set<std::string> seen_aliases;
  Schema full_schema;
  for (Atom& a : atoms) {
    std::string alias = ToLower(a.ref.EffectiveAlias());
    if (!seen_aliases.insert(alias).second) {
      return Status::InvalidArgument("duplicate table alias: " + alias);
    }
    a.offset = full_schema.NumColumns();
    a.width = a.table->schema().NumColumns();
    Schema qualified = a.table->schema().WithQualifier(alias);
    for (const Column& c : qualified.columns()) full_schema.AddColumn(c);
  }

  ExprBinder binder(full_schema);

  // 3. Gather conjuncts from WHERE and ON clauses, bound over full_schema.
  std::vector<Conjunct> conjuncts;
  auto add_conjuncts = [&](const Expr& bound_root,
                           int min_last_atom) -> Status {
    for (const Expr* part : SplitConjuncts(bound_root)) {
      Conjunct c;
      c.expr = part->Clone();
      std::vector<int> used = CollectColumnIndexes(*c.expr);
      int last = -1;
      int first = static_cast<int>(atoms.size());
      for (int idx : used) {
        int a = AtomOfIndex(atoms, idx);
        last = std::max(last, a);
        first = std::min(first, a);
      }
      c.last_atom = std::max(last, min_last_atom);
      c.single_atom = !used.empty() && first == last && min_last_atom <= last;
      conjuncts.push_back(std::move(c));
    }
    return Status::OK();
  };

  for (const PendingOn& po : pending_on) {
    ExprPtr on = po.clause->on->Clone();
    HIPPO_RETURN_NOT_OK(binder.BindPredicate(on.get()));
    // SQL scoping: an ON clause may reference only atoms up to its join.
    for (int idx : CollectColumnIndexes(*on)) {
      if (AtomOfIndex(atoms, idx) > po.atom_index) {
        return Status::InvalidArgument(
            "ON condition references a table joined later: " + on->ToString());
      }
    }
    HIPPO_RETURN_NOT_OK(add_conjuncts(*on, po.atom_index));
    bound_on.push_back(std::move(on));
  }
  ExprPtr bound_where;
  if (core.where != nullptr) {
    bound_where = core.where->Clone();
    HIPPO_RETURN_NOT_OK(binder.BindPredicate(bound_where.get()));
    HIPPO_RETURN_NOT_OK(add_conjuncts(*bound_where, -1));
  }

  // 4. Build the left-deep tree. Single-atom conjuncts become filters on
  //    their scan (indexes rebased); the rest become join conditions at
  //    their last atom; constants apply at the top.
  auto make_scan = [&](size_t i) -> PlanNodePtr {
    const Atom& a = atoms[i];
    PlanNodePtr scan =
        ScanNode::Make(a.table->id(), a.table->name(),
                       ToLower(a.ref.EffectiveAlias()), a.table->schema());
    std::vector<ExprPtr> filters;
    for (Conjunct& c : conjuncts) {
      if (c.expr != nullptr && c.single_atom &&
          c.last_atom == static_cast<int>(i)) {
        ExprPtr e = std::move(c.expr);
        int delta = -static_cast<int>(a.offset);
        VisitColumnRefs(e.get(), [delta](ColumnRefExpr* ref) {
          ref->ShiftIndex(delta);
        });
        filters.push_back(std::move(e));
      }
    }
    if (!filters.empty()) {
      scan = std::make_unique<FilterNode>(std::move(scan),
                                          AndAll(std::move(filters)));
    }
    return scan;
  };

  PlanNodePtr plan = make_scan(0);
  for (size_t i = 1; i < atoms.size(); ++i) {
    PlanNodePtr right = make_scan(i);
    std::vector<ExprPtr> join_conds;
    for (Conjunct& c : conjuncts) {
      if (c.expr != nullptr && !c.single_atom &&
          c.last_atom == static_cast<int>(i)) {
        join_conds.push_back(std::move(c.expr));
      }
    }
    if (join_conds.empty()) {
      plan = std::make_unique<ProductNode>(std::move(plan), std::move(right));
    } else {
      plan = std::make_unique<JoinNode>(std::move(plan), std::move(right),
                                        AndAll(std::move(join_conds)));
    }
  }
  // Constant conjuncts (no column references).
  {
    std::vector<ExprPtr> consts;
    for (Conjunct& c : conjuncts) {
      if (c.expr != nullptr && c.last_atom == -1) {
        consts.push_back(std::move(c.expr));
      }
    }
    if (!consts.empty()) {
      plan = std::make_unique<FilterNode>(std::move(plan),
                                          AndAll(std::move(consts)));
    }
  }

  // 5. Aggregation: GROUP BY or aggregate calls in SELECT/HAVING reroute
  //    the plan through an AggregateNode.
  bool has_agg = !core.group_by.empty() ||
                 (core.having != nullptr) ||
                 [&core] {
                   for (const sql::SelectItem& item : core.items) {
                     if (!item.star && ContainsAggCall(*item.expr)) {
                       return true;
                     }
                   }
                   return false;
                 }();
  if (has_agg) {
    return PlanAggregation(core, std::move(plan));
  }

  // 6. Projection: expand stars, bind expressions, derive output names.
  std::vector<ExprPtr> proj_exprs;
  Schema out_schema;
  auto add_output = [&](ExprPtr e, std::string name, std::string qualifier) {
    out_schema.AddColumn(Column(std::move(name), e->result_type(),
                                std::move(qualifier)));
    proj_exprs.push_back(std::move(e));
  };
  for (const sql::SelectItem& item : core.items) {
    if (item.star) {
      bool matched = false;
      for (size_t i = 0; i < full_schema.NumColumns(); ++i) {
        const Column& c = full_schema.column(i);
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(c.qualifier, item.star_qualifier)) {
          continue;
        }
        matched = true;
        add_output(ColumnRefExpr::Bound(i, c.type, c.name, c.qualifier),
                   c.name, c.qualifier);
      }
      if (!matched) {
        return Status::InvalidArgument("no columns match " +
                                       item.star_qualifier + ".*");
      }
      continue;
    }
    ExprPtr e = item.expr->Clone();
    HIPPO_RETURN_NOT_OK(binder.Bind(e.get()));
    std::string name = item.alias;
    std::string qualifier;
    if (name.empty()) {
      if (e->kind() == ExprKind::kColumnRef) {
        const auto& ref = static_cast<const ColumnRefExpr&>(*e);
        const Column& c = full_schema.column(static_cast<size_t>(ref.index()));
        name = c.name;
        qualifier = c.qualifier;
      } else {
        name = StrFormat("col%zu", proj_exprs.size() + 1);
      }
    }
    add_output(std::move(e), std::move(name), std::move(qualifier));
  }

  return PlanNodePtr(std::make_unique<ProjectNode>(
      std::move(plan), std::move(proj_exprs), std::move(out_schema)));
}

Result<PlanNodePtr> Planner::PlanQueryExpr(const sql::QueryExpr& query) {
  if (query.IsLeaf()) {
    return PlanSelectCore(*query.core);
  }
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr left, PlanQueryExpr(*query.left));
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr right, PlanQueryExpr(*query.right));
  if (!left->schema().UnionCompatible(right->schema())) {
    return Status::TypeError(
        "set operation operands are not union-compatible: " +
        left->schema().ToString() + " vs " + right->schema().ToString());
  }
  PlanKind kind;
  switch (query.op) {
    case sql::SetOpKind::kUnion:
      kind = PlanKind::kUnion;
      break;
    case sql::SetOpKind::kExcept:
      kind = PlanKind::kDifference;
      break;
    case sql::SetOpKind::kIntersect:
      kind = PlanKind::kIntersect;
      break;
    default:
      return Status::Internal("unknown set operation");
  }
  return PlanNodePtr(
      std::make_unique<SetOpNode>(kind, std::move(left), std::move(right)));
}

Result<PlanNodePtr> Planner::PlanSelect(const sql::SelectStmt& stmt) {
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanQueryExpr(*stmt.query));
  if (!stmt.order_by.empty()) {
    ExprBinder binder(plan->schema());
    std::vector<SortNode::Key> keys;
    for (const sql::OrderItem& item : stmt.order_by) {
      ExprPtr e = item.expr->Clone();
      HIPPO_RETURN_NOT_OK(binder.Bind(e.get()));
      keys.push_back(SortNode::Key{std::move(e), item.ascending});
    }
    plan = std::make_unique<SortNode>(std::move(plan), std::move(keys));
  }
  return plan;
}

}  // namespace hippo
