// Algebraic plan optimizer: filter pushdown and product-to-join conversion.
//
// The planner already places WHERE/ON conjuncts well for the plans it
// builds itself, but plans assembled programmatically (tests, the rewriting
// baseline's residue trees, set-operation compositions) can carry filters
// far above the scans they constrain. This pass normalizes any bound plan:
//
//   * adjacent filters merge (Filter(Filter(x)) -> one conjunction);
//   * filters commute with Sort and rename-only Projects;
//   * filters split across Products/Joins: single-side conjuncts sink into
//     the side they constrain, cross-side conjuncts become (or extend) the
//     join condition — turning filtered cartesian products into hash joins;
//   * filters distribute into both children of Union/Intersect/Difference
//     (sound under set semantics: a set-op output row appears verbatim in
//     the inputs);
//   * TRUE conjuncts are dropped.
//
// The optimizer is applied to plain evaluation paths only. The CQA
// envelope/knowledge-gathering pipeline interprets plan *structure* (it
// grounds membership per subexpression), so Hippo's own plans are left
// exactly as the enveloping step built them.
#pragma once

#include "plan/logical_plan.h"

namespace hippo {

/// Returns an optimized copy of `plan` (the input is not modified).
/// Idempotent; preserves the output schema and, under set semantics, the
/// result set of every bound plan.
PlanNodePtr OptimizePlan(const PlanNode& plan);

}  // namespace hippo
