#include "plan/optimizer.h"

#include <vector>

#include "common/macros.h"
#include "expr/expr.h"

namespace hippo {

namespace {

/// True for a literal TRUE predicate (dropped during pushdown).
bool IsTrueLiteral(const Expr& e) {
  if (e.kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(e).value();
  return v.type() == TypeId::kBool && v.AsBool();
}

/// Splits `pred` into owned conjuncts appended to `out`.
void AppendConjuncts(const Expr& pred, std::vector<ExprPtr>* out) {
  for (const Expr* part : SplitConjuncts(pred)) {
    if (IsTrueLiteral(*part)) continue;
    out->push_back(part->Clone());
  }
}

/// Largest bound column index used by the expression; -1 for constants.
int MaxIndex(const Expr& e) {
  int max_idx = -1;
  VisitColumnRefs(e, [&max_idx](const ColumnRefExpr& ref) {
    max_idx = std::max(max_idx, ref.index());
  });
  return max_idx;
}

/// Rebases every column reference by `delta`.
void Shift(Expr* e, int delta) {
  if (delta == 0) return;
  VisitColumnRefs(e, [delta](ColumnRefExpr* ref) { ref->ShiftIndex(delta); });
}

/// Wraps `node` in a Filter over the conjunction of `preds` (no-op when
/// empty).
PlanNodePtr Attach(PlanNodePtr node, std::vector<ExprPtr> preds) {
  if (preds.empty()) return node;
  return std::make_unique<FilterNode>(std::move(node),
                                      AndAll(std::move(preds)));
}

/// Recursive pushdown: rewrites `plan` while sinking `preds` (bound over
/// plan's output schema) as deep as soundness allows.
PlanNodePtr Push(const PlanNode& plan, std::vector<ExprPtr> preds) {
  switch (plan.kind()) {
    case PlanKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(plan);
      AppendConjuncts(f.predicate(), &preds);
      return Push(plan.child(0), std::move(preds));
    }
    case PlanKind::kSort: {
      const auto& s = static_cast<const SortNode&>(plan);
      std::vector<SortNode::Key> keys;
      for (const SortNode::Key& k : s.keys()) {
        keys.push_back(SortNode::Key{k.expr->Clone(), k.ascending});
      }
      return std::make_unique<SortNode>(Push(plan.child(0), std::move(preds)),
                                        std::move(keys));
    }
    case PlanKind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(plan);
      // Filters commute with rename-only projections: remap each predicate
      // column through the projection's output->input mapping.
      bool rename_only = true;
      std::vector<int> mapping(p.NumExprs(), -1);
      for (size_t i = 0; i < p.NumExprs(); ++i) {
        if (p.expr(i).kind() != ExprKind::kColumnRef) {
          rename_only = false;
          break;
        }
        mapping[i] = static_cast<const ColumnRefExpr&>(p.expr(i)).index();
      }
      std::vector<ExprPtr> exprs;
      for (size_t i = 0; i < p.NumExprs(); ++i) {
        exprs.push_back(p.expr(i).Clone());
      }
      if (!rename_only) {
        return Attach(std::make_unique<ProjectNode>(Push(plan.child(0), {}),
                                                    std::move(exprs),
                                                    p.schema()),
                      std::move(preds));
      }
      for (ExprPtr& pred : preds) {
        VisitColumnRefs(pred.get(), [&mapping](ColumnRefExpr* ref) {
          HIPPO_DCHECK(static_cast<size_t>(ref->index()) < mapping.size());
          int delta = mapping[static_cast<size_t>(ref->index())] -
                      ref->index();
          ref->ShiftIndex(delta);
        });
      }
      return std::make_unique<ProjectNode>(
          Push(plan.child(0), std::move(preds)), std::move(exprs),
          p.schema());
    }
    case PlanKind::kProduct:
    case PlanKind::kJoin: {
      const size_t lw = plan.child(0).schema().NumColumns();
      if (plan.kind() == PlanKind::kJoin) {
        AppendConjuncts(static_cast<const JoinNode&>(plan).condition(),
                        &preds);
      }
      std::vector<ExprPtr> left, right, spanning;
      for (ExprPtr& pred : preds) {
        int max_idx = MaxIndex(*pred);
        int min_idx = max_idx;
        VisitColumnRefs(*pred, [&min_idx](const ColumnRefExpr& ref) {
          min_idx = std::min(min_idx, ref.index());
        });
        if (max_idx < static_cast<int>(lw)) {
          // Left-only (constants land here too — evaluated fewer times).
          left.push_back(std::move(pred));
        } else if (min_idx >= static_cast<int>(lw)) {
          Shift(pred.get(), -static_cast<int>(lw));
          right.push_back(std::move(pred));
        } else {
          spanning.push_back(std::move(pred));
        }
      }
      PlanNodePtr l = Push(plan.child(0), std::move(left));
      PlanNodePtr r = Push(plan.child(1), std::move(right));
      if (spanning.empty()) {
        return std::make_unique<ProductNode>(std::move(l), std::move(r));
      }
      return std::make_unique<JoinNode>(std::move(l), std::move(r),
                                        AndAll(std::move(spanning)));
    }
    case PlanKind::kAntiJoin: {
      // Schema = left schema; predicates constrain surviving left rows and
      // push into the left input. The probe condition stays put.
      const auto& aj = static_cast<const AntiJoinNode&>(plan);
      return std::make_unique<AntiJoinNode>(
          Push(plan.child(0), std::move(preds)), Push(plan.child(1), {}),
          aj.condition().Clone());
    }
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference: {
      // Set semantics: an output row appears verbatim in the inputs, so a
      // filter distributes into both children. For Difference,
      // θ(E1 − E2) = θ(E1) − θ(E2): a row surviving θ on the left is
      // removed exactly when it is in E2, and θ holds for it there too
      // (same values); rows failing θ are absent from both sides.
      std::vector<ExprPtr> right_preds;
      right_preds.reserve(preds.size());
      for (const ExprPtr& p : preds) right_preds.push_back(p->Clone());
      return std::make_unique<SetOpNode>(
          plan.kind(), Push(plan.child(0), std::move(preds)),
          Push(plan.child(1), std::move(right_preds)));
    }
    case PlanKind::kAggregate: {
      // HAVING-style filters reference the aggregate output; pushing them
      // below would change group contents. They stay above.
      const auto& agg = static_cast<const AggregateNode&>(plan);
      std::vector<ExprPtr> groups;
      std::vector<std::string> names;
      for (size_t i = 0; i < agg.NumGroupExprs(); ++i) {
        groups.push_back(agg.group_expr(i).Clone());
        names.push_back(agg.schema().column(i).name);
      }
      std::vector<AggregateNode::AggSpec> specs;
      for (const AggregateNode::AggSpec& s : agg.aggs()) {
        specs.push_back(AggregateNode::AggSpec{
            s.fn, s.arg == nullptr ? nullptr : s.arg->Clone(), s.name});
      }
      return Attach(std::make_unique<AggregateNode>(
                        Push(plan.child(0), {}), std::move(groups),
                        std::move(names), std::move(specs)),
                    std::move(preds));
    }
    case PlanKind::kScan:
      return Attach(plan.Clone(), std::move(preds));
  }
  HIPPO_CHECK_MSG(false, "unknown plan kind in optimizer");
  return nullptr;
}

}  // namespace

PlanNodePtr OptimizePlan(const PlanNode& plan) {
  return Push(plan, {});
}

}  // namespace hippo
