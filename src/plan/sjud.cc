#include "plan/sjud.h"

#include <unordered_set>

#include "expr/expr.h"

namespace hippo {

bool IsSafeProjection(const ProjectNode& project) {
  std::unordered_set<int> covered;
  for (size_t i = 0; i < project.NumExprs(); ++i) {
    const Expr& e = project.expr(i);
    if (e.kind() != ExprKind::kColumnRef) return false;
    covered.insert(static_cast<const ColumnRefExpr&>(e).index());
  }
  return covered.size() == project.child(0).schema().NumColumns();
}

namespace {

Status CheckInner(const PlanNode& plan) {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(plan);
      if (scan.emit_rowid()) {
        return Status::NotSupported(
            "rowid-emitting scans are internal and not part of SJUD");
      }
      return Status::OK();
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(plan);
      if (ContainsAggCall(filter.predicate())) {
        return Status::NotSupported(
            "aggregate calls have no per-tuple meaning inside a filter "
            "predicate");
      }
      return CheckInner(plan.child(0));
    }
    case PlanKind::kProject: {
      const auto& proj = static_cast<const ProjectNode&>(plan);
      if (!IsSafeProjection(proj)) {
        return Status::NotSupported(
            "projection introduces an existential quantifier (drops columns "
            "or computes expressions); consistent answers for such queries "
            "are co-NP-hard and outside Hippo's supported class");
      }
      return CheckInner(plan.child(0));
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(plan);
      if (ContainsAggCall(join.condition())) {
        return Status::NotSupported(
            "aggregate calls have no per-tuple meaning inside a join "
            "condition");
      }
      for (size_t i = 0; i < plan.NumChildren(); ++i) {
        HIPPO_RETURN_NOT_OK(CheckInner(plan.child(i)));
      }
      return Status::OK();
    }
    case PlanKind::kProduct:
    case PlanKind::kUnion:
    case PlanKind::kDifference:
    case PlanKind::kIntersect: {
      for (size_t i = 0; i < plan.NumChildren(); ++i) {
        HIPPO_RETURN_NOT_OK(CheckInner(plan.child(i)));
      }
      return Status::OK();
    }
    case PlanKind::kAntiJoin:
      return Status::NotSupported(
          "anti-joins are produced by the rewriting baseline and are not in "
          "the SJUD input class");
    case PlanKind::kSort:
      return Status::NotSupported("ORDER BY is only allowed at the top level");
    case PlanKind::kAggregate:
      return Status::NotSupported(
          "aggregate queries have no single consistent answer; use "
          "Database::RangeConsistentAggregate (range semantics) instead");
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace

Status CheckSjudSupported(const PlanNode& plan) {
  if (plan.kind() == PlanKind::kSort) {
    return CheckInner(plan.child(0));
  }
  return CheckInner(plan);
}

}  // namespace hippo
