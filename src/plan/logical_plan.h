// Bound logical plans (relational algebra trees).
//
// Plans are produced by the Planner from SQL ASTs, already bound: every
// expression has resolved column ordinals and types, and every node knows
// its output schema. The same trees are consumed by the executor, the SJUD
// classifier, the envelope builder, grounding, and the rewriting baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "expr/expr.h"

namespace hippo {

enum class PlanKind : uint8_t {
  kScan,
  kFilter,
  kProject,
  kProduct,
  kJoin,
  kAntiJoin,
  kUnion,
  kDifference,
  kIntersect,
  kSort,
  kAggregate,
};

const char* PlanKindToString(PlanKind k);

class PlanNode;
using PlanNodePtr = std::unique_ptr<PlanNode>;

/// \brief Base class of logical plan nodes.
class PlanNode {
 public:
  PlanNode(PlanKind kind, Schema schema, std::vector<PlanNodePtr> children)
      : kind_(kind), schema_(std::move(schema)), children_(std::move(children)) {}
  virtual ~PlanNode() = default;

  PlanKind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }

  size_t NumChildren() const { return children_.size(); }
  const PlanNode& child(size_t i) const { return *children_[i]; }
  PlanNode* mutable_child(size_t i) { return children_[i].get(); }

  virtual PlanNodePtr Clone() const = 0;

  /// Multi-line indented rendering for diagnostics and plan tests.
  std::string ToString() const;
  virtual std::string NodeLabel() const = 0;

 protected:
  /// Derived constructors that compute their schema from the children must
  /// set it after the children vector is in place (argument evaluation
  /// order would otherwise race a move against schema()).
  void set_schema(Schema schema) { schema_ = std::move(schema); }

  std::vector<PlanNodePtr> CloneChildren() const {
    std::vector<PlanNodePtr> out;
    out.reserve(children_.size());
    for (const auto& c : children_) out.push_back(c->Clone());
    return out;
  }

 private:
  PlanKind kind_;
  Schema schema_;
  std::vector<PlanNodePtr> children_;
};

/// Leaf: scan of a base table under an alias. Optionally exposes the row
/// index as a trailing INTEGER column named `$rowid` (used by conflict
/// detection and the knowledge-gathering envelope).
class ScanNode final : public PlanNode {
 public:
  ScanNode(uint32_t table_id, std::string table_name, std::string alias,
           Schema schema, bool emit_rowid)
      : PlanNode(PlanKind::kScan, std::move(schema), {}),
        table_id_(table_id),
        table_name_(std::move(table_name)),
        alias_(std::move(alias)),
        emit_rowid_(emit_rowid) {}

  uint32_t table_id() const { return table_id_; }
  const std::string& table_name() const { return table_name_; }
  const std::string& alias() const { return alias_; }
  bool emit_rowid() const { return emit_rowid_; }

  /// Builds a scan with the table's schema qualified by `alias`.
  static PlanNodePtr Make(uint32_t table_id, const std::string& table_name,
                          const std::string& alias, const Schema& table_schema,
                          bool emit_rowid = false);

  PlanNodePtr Clone() const override;
  std::string NodeLabel() const override;

 private:
  uint32_t table_id_;
  std::string table_name_;
  std::string alias_;
  bool emit_rowid_;
};

/// Selection: keeps rows where the predicate is TRUE.
class FilterNode final : public PlanNode {
 public:
  FilterNode(PlanNodePtr child, ExprPtr predicate);

  const Expr& predicate() const { return *predicate_; }

  PlanNodePtr Clone() const override;
  std::string NodeLabel() const override;

 private:
  ExprPtr predicate_;
};

/// Projection with explicit output naming; output is deduplicated
/// (set semantics).
class ProjectNode final : public PlanNode {
 public:
  ProjectNode(PlanNodePtr child, std::vector<ExprPtr> exprs, Schema schema);

  size_t NumExprs() const { return exprs_.size(); }
  const Expr& expr(size_t i) const { return *exprs_[i]; }

  PlanNodePtr Clone() const override;
  std::string NodeLabel() const override;

 private:
  std::vector<ExprPtr> exprs_;
};

/// Cartesian product (schema = concat).
class ProductNode final : public PlanNode {
 public:
  ProductNode(PlanNodePtr left, PlanNodePtr right);
  PlanNodePtr Clone() const override;
  std::string NodeLabel() const override { return "Product"; }
};

/// Inner join: product restricted by a condition over the concatenated
/// schema. The executor picks hash vs nested-loop based on the condition.
class JoinNode final : public PlanNode {
 public:
  JoinNode(PlanNodePtr left, PlanNodePtr right, ExprPtr condition);

  const Expr& condition() const { return *condition_; }

  PlanNodePtr Clone() const override;
  std::string NodeLabel() const override;

 private:
  ExprPtr condition_;
};

/// Anti join: left rows with NO right match under the condition (used by the
/// query-rewriting baseline to express residue `NOT EXISTS` subqueries).
class AntiJoinNode final : public PlanNode {
 public:
  AntiJoinNode(PlanNodePtr left, PlanNodePtr right, ExprPtr condition);

  const Expr& condition() const { return *condition_; }

  PlanNodePtr Clone() const override;
  std::string NodeLabel() const override;

 private:
  ExprPtr condition_;
};

/// Set operations (set semantics; children must be union-compatible).
class SetOpNode final : public PlanNode {
 public:
  SetOpNode(PlanKind kind, PlanNodePtr left, PlanNodePtr right);
  PlanNodePtr Clone() const override;
  std::string NodeLabel() const override { return PlanKindToString(kind()); }
};

/// Hash aggregation: GROUP BY and aggregate functions (plain evaluation
/// only — CQA over aggregates goes through RangeAggregator's range
/// semantics instead).
class AggregateNode final : public PlanNode {
 public:
  struct AggSpec {
    AggFunc fn;
    ExprPtr arg;       ///< bound over the child schema; null for COUNT(*)
    std::string name;  ///< output column name
  };

  /// Output schema: one column per group expression (named `group_names`),
  /// then one column per aggregate.
  AggregateNode(PlanNodePtr child, std::vector<ExprPtr> group_exprs,
                std::vector<std::string> group_names,
                std::vector<AggSpec> aggs);

  size_t NumGroupExprs() const { return group_exprs_.size(); }
  const Expr& group_expr(size_t i) const { return *group_exprs_[i]; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  PlanNodePtr Clone() const override;
  std::string NodeLabel() const override;

 private:
  std::vector<ExprPtr> group_exprs_;
  std::vector<std::string> group_names_;
  std::vector<AggSpec> aggs_;
};

/// ORDER BY (top of a statement only).
class SortNode final : public PlanNode {
 public:
  struct Key {
    ExprPtr expr;
    bool ascending;
  };
  SortNode(PlanNodePtr child, std::vector<Key> keys);

  const std::vector<Key>& keys() const { return keys_; }

  PlanNodePtr Clone() const override;
  std::string NodeLabel() const override;

 private:
  std::vector<Key> keys_;
};

}  // namespace hippo
