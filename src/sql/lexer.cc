#include "sql/lexer.h"

#include <cctype>
#include <cstring>

#include "common/str_util.h"

namespace hippo::sql {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      tokens.push_back(Token{TokenKind::kIdentifier,
                             ToLower(input.substr(start, i - start)), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      tokens.push_back(Token{is_double ? TokenKind::kDouble
                                       : TokenKind::kInteger,
                             input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(StrFormat(
            "unterminated string literal at offset %zu", start));
      }
      tokens.push_back(Token{TokenKind::kString, std::move(text), start});
      continue;
    }
    // Multi-char symbols first.
    auto two = [&](const char* s) {
      return i + 1 < n && input[i] == s[0] && input[i + 1] == s[1];
    };
    if (two("<>") || two("!=") || two("<=") || two(">=") || two("->")) {
      std::string sym = input.substr(i, 2);
      if (sym == "!=") sym = "<>";
      tokens.push_back(Token{TokenKind::kSymbol, sym, start});
      i += 2;
      continue;
    }
    static const char kSingles[] = "(),.;=<>+-*/%";
    if (std::strchr(kSingles, c) != nullptr) {
      tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StrFormat("illegal character '%c' at offset %zu", c, start));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace hippo::sql
