// Abstract syntax trees produced by the SQL parser.
//
// The statement surface is the subset Hippo needs: DDL/DML to build database
// instances, SELECT queries in the SJUD class (plus general projection for
// plain evaluation), and constraint DDL for functional dependencies,
// exclusion constraints, and general denial constraints.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "expr/expr.h"
#include "types/value.h"

namespace hippo::sql {

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

/// `table [AS] alias` in a FROM clause or constraint atom.
struct TableRef {
  std::string table;
  std::string alias;  ///< defaults to the table name when not given

  const std::string& EffectiveAlias() const {
    return alias.empty() ? table : alias;
  }
};

/// `JOIN table ON cond` attached to a FROM item (inner joins only).
struct JoinClause {
  TableRef table;
  ExprPtr on;
};

/// A FROM item: base table plus a chain of inner joins.
struct FromItem {
  TableRef base;
  std::vector<JoinClause> joins;
};

/// One entry of a SELECT list.
struct SelectItem {
  bool star = false;            ///< `*` or `alias.*`
  std::string star_qualifier;   ///< set for `alias.*`
  ExprPtr expr;                 ///< when !star
  std::string alias;            ///< `AS alias`, optional
};

/// A single SELECT core (no set operations).
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<FromItem> from;
  ExprPtr where;                  ///< may be null
  std::vector<ExprPtr> group_by;  ///< empty when not grouped
  ExprPtr having;                 ///< may be null; requires aggregation
};

enum class SetOpKind { kUnion, kExcept, kIntersect };

/// A query expression: either a SELECT core or a set operation of two.
struct QueryExpr {
  // Leaf:
  std::unique_ptr<SelectCore> core;
  // Internal:
  SetOpKind op = SetOpKind::kUnion;
  std::unique_ptr<QueryExpr> left;
  std::unique_ptr<QueryExpr> right;

  bool IsLeaf() const { return core != nullptr; }
};

/// ORDER BY entry (top level of a SELECT statement only).
struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct CreateTableStmt {
  std::string name;
  std::vector<std::pair<std::string, TypeId>> columns;
  /// `PRIMARY KEY` / `UNIQUE` column or table constraints: each list of
  /// columns functionally determines the rest of the table (sugar for an
  /// FD constraint named <table>_key<N>).
  std::vector<std::vector<std::string>> keys;
  /// `CHECK (expr)` table constraints: sugar for a unary denial constraint
  /// named <table>_check<N> forbidding rows where the expression is FALSE
  /// (NULL passes, as in SQL).
  std::vector<ExprPtr> checks;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;  ///< constant expressions
};

/// `DELETE FROM t [WHERE cond]`. Deleted rows keep their RowId (tombstones).
struct DeleteStmt {
  std::string table;
  ExprPtr where;  ///< may be null (delete all rows)
};

/// `UPDATE t SET col = expr, ... [WHERE cond]`. Executed as delete+insert
/// under set semantics; assignment expressions see the pre-update row.
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< may be null (update all rows)
};

struct SelectStmt {
  std::unique_ptr<QueryExpr> query;
  std::vector<OrderItem> order_by;
};

// Constraint DDL ------------------------------------------------------------

/// `CREATE CONSTRAINT c FD ON emp (name -> salary, dept)`:
/// two emp tuples may not agree on `lhs` and differ on any column of `rhs`.
struct FdSpec {
  std::string table;
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;
};

/// `CREATE CONSTRAINT c EXCLUSION ON r (a, b), s (c, d)`:
/// no r-tuple and s-tuple agree position-wise on the listed columns.
struct ExclusionSpec {
  std::string table1;
  std::vector<std::string> cols1;
  std::string table2;
  std::vector<std::string> cols2;
};

/// `CREATE CONSTRAINT c DENIAL (r AS x, s AS y WHERE <cond>)`:
/// the general form — no tuple assignment to the atoms may satisfy <cond>.
struct DenialSpec {
  std::vector<TableRef> atoms;
  ExprPtr where;  ///< may be null (meaning: the atoms may never all hold)
};

/// `CREATE CONSTRAINT c FOREIGN KEY child (cols) REFERENCES parent (cols)`:
/// every child tuple must have a matching parent tuple (restricted class:
/// the parent relation must carry no other constraints).
struct ForeignKeySpec {
  std::string child;
  std::vector<std::string> child_cols;
  std::string parent;
  std::vector<std::string> parent_cols;
};

struct CreateConstraintStmt {
  std::string name;
  std::variant<FdSpec, ExclusionSpec, DenialSpec, ForeignKeySpec> spec;
};

/// `COPY t FROM 'file.csv'` (import) / `COPY t TO 'file.csv'` (export).
struct CopyStmt {
  std::string table;
  std::string path;
  bool is_import = true;  ///< FROM = import, TO = export
};

/// `DROP TABLE t` / `DROP CONSTRAINT c`.
struct DropStmt {
  bool is_table = true;  ///< false: constraint
  std::string name;
};

/// Any parsed statement.
struct Statement {
  std::variant<CreateTableStmt, InsertStmt, SelectStmt, CreateConstraintStmt,
               DeleteStmt, UpdateStmt, CopyStmt, DropStmt>
      node;
};

}  // namespace hippo::sql
