#include "sql/parser.h"

#include "common/str_util.h"
#include "sql/lexer.h"

namespace hippo::sql {

namespace {

/// Keywords that terminate an alias-less identifier position, so that
/// `FROM t WHERE ...` does not read WHERE as an alias of t.
bool IsReservedAfterTable(const Token& t) {
  static const char* kReserved[] = {
      "where",  "join",   "on",     "union", "except", "intersect",
      "order",  "group",  "as",     "inner", "values", "and",
      "or",     "not",    "fd",     "exclusion", "denial",
      "from",   "select", "create", "insert",    "into",
      "table",  "by",     "asc",    "desc",      "is",
      "having", "set",    "delete", "update",    "copy",   "drop",
      "to",     "primary", "unique", "check",
  };
  for (const char* kw : kReserved) {
    if (t.IsKeyword(kw)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOneStatement() {
    HIPPO_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    Accept(";");
    if (!AtEnd()) return Fail("unexpected trailing input");
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      HIPPO_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
      out.push_back(std::move(stmt));
      if (!Accept(";")) break;
    }
    if (!AtEnd()) return Fail("unexpected trailing input");
    return out;
  }

  Result<ExprPtr> ParseOnlyExpression() {
    HIPPO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) return Fail("unexpected trailing input after expression");
    return e;
  }

 private:
  // --- token helpers ------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool Accept(const char* symbol) {
    if (Peek().IsSymbol(symbol)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(const char* symbol) {
    if (!Accept(symbol)) {
      return Status::InvalidArgument(StrFormat(
          "expected '%s' at offset %zu, found '%s'", symbol, Peek().offset,
          Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(StrFormat(
          "expected %s at offset %zu, found '%s'", kw, Peek().offset,
          Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status Fail(const std::string& msg) const {
    return Status::InvalidArgument(StrFormat(
        "%s at offset %zu (near '%s')", msg.c_str(), Peek().offset,
        Peek().text.c_str()));
  }
  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument(StrFormat(
          "expected %s at offset %zu, found '%s'", what, Peek().offset,
          Peek().text.c_str()));
    }
    return Advance().text;
  }

  // --- statements ---------------------------------------------------------

  Result<Statement> ParseStatementInner() {
    if (Peek().IsKeyword("create")) {
      if (Peek(1).IsKeyword("table")) return ParseCreateTable();
      if (Peek(1).IsKeyword("constraint")) return ParseCreateConstraint();
      return Fail("expected TABLE or CONSTRAINT after CREATE");
    }
    if (Peek().IsKeyword("insert")) return ParseInsert();
    if (Peek().IsKeyword("delete")) return ParseDelete();
    if (Peek().IsKeyword("update")) return ParseUpdate();
    if (Peek().IsKeyword("copy")) return ParseCopy();
    if (Peek().IsKeyword("drop")) return ParseDrop();
    if (Peek().IsKeyword("select") || Peek().IsSymbol("(")) {
      return ParseSelectStmt();
    }
    return Fail(
        "expected CREATE, INSERT, DELETE, UPDATE, COPY, DROP or SELECT");
  }

  Result<Statement> ParseCreateTable() {
    Advance();  // CREATE
    Advance();  // TABLE
    CreateTableStmt stmt;
    HIPPO_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("table name"));
    HIPPO_RETURN_NOT_OK(Expect("("));
    do {
      // Table-level constraint entries.
      if (Peek().IsKeyword("primary") || Peek().IsKeyword("unique")) {
        bool primary = AcceptKeyword("primary");
        if (primary) HIPPO_RETURN_NOT_OK(ExpectKeyword("key"));
        if (!primary) HIPPO_RETURN_NOT_OK(ExpectKeyword("unique"));
        HIPPO_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                               ParseColumnList());
        stmt.keys.push_back(std::move(cols));
        continue;
      }
      if (AcceptKeyword("check")) {
        HIPPO_RETURN_NOT_OK(Expect("("));
        HIPPO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        HIPPO_RETURN_NOT_OK(Expect(")"));
        stmt.checks.push_back(std::move(e));
        continue;
      }
      HIPPO_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      HIPPO_ASSIGN_OR_RETURN(std::string ty, ExpectIdentifier("type name"));
      HIPPO_ASSIGN_OR_RETURN(TypeId type, TypeIdFromString(ty));
      // Column-level sugar: `col TYPE PRIMARY KEY` / `col TYPE UNIQUE`.
      if (AcceptKeyword("primary")) {
        HIPPO_RETURN_NOT_OK(ExpectKeyword("key"));
        stmt.keys.push_back({col});
      } else if (AcceptKeyword("unique")) {
        stmt.keys.push_back({col});
      }
      stmt.columns.emplace_back(std::move(col), type);
    } while (Accept(","));
    HIPPO_RETURN_NOT_OK(Expect(")"));
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    HIPPO_RETURN_NOT_OK(ExpectKeyword("into"));
    InsertStmt stmt;
    HIPPO_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    HIPPO_RETURN_NOT_OK(ExpectKeyword("values"));
    do {
      HIPPO_RETURN_NOT_OK(Expect("("));
      std::vector<ExprPtr> row;
      do {
        HIPPO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (Accept(","));
      HIPPO_RETURN_NOT_OK(Expect(")"));
      stmt.rows.push_back(std::move(row));
    } while (Accept(","));
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseDelete() {
    Advance();  // DELETE
    HIPPO_RETURN_NOT_OK(ExpectKeyword("from"));
    DeleteStmt stmt;
    HIPPO_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("where")) {
      HIPPO_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseUpdate() {
    Advance();  // UPDATE
    UpdateStmt stmt;
    HIPPO_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    HIPPO_RETURN_NOT_OK(ExpectKeyword("set"));
    do {
      HIPPO_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      HIPPO_RETURN_NOT_OK(Expect("="));
      HIPPO_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(value));
    } while (Accept(","));
    if (AcceptKeyword("where")) {
      HIPPO_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseDrop() {
    Advance();  // DROP
    DropStmt stmt;
    if (AcceptKeyword("table")) {
      stmt.is_table = true;
    } else if (AcceptKeyword("constraint")) {
      stmt.is_table = false;
    } else {
      return Fail("expected TABLE or CONSTRAINT after DROP");
    }
    HIPPO_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("name"));
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseCopy() {
    Advance();  // COPY
    CopyStmt stmt;
    HIPPO_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("from")) {
      stmt.is_import = true;
    } else if (AcceptKeyword("to")) {
      stmt.is_import = false;
    } else {
      return Fail("expected FROM or TO after COPY <table>");
    }
    if (Peek().kind != TokenKind::kString) {
      return Fail("expected a quoted file path");
    }
    stmt.path = Advance().text;
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseSelectStmt() {
    SelectStmt stmt;
    HIPPO_ASSIGN_OR_RETURN(stmt.query, ParseQuery());
    if (AcceptKeyword("order")) {
      HIPPO_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        OrderItem item;
        HIPPO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("desc")) {
          item.ascending = false;
        } else {
          AcceptKeyword("asc");
        }
        stmt.order_by.push_back(std::move(item));
      } while (Accept(","));
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseCreateConstraint() {
    Advance();  // CREATE
    Advance();  // CONSTRAINT
    CreateConstraintStmt stmt;
    HIPPO_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("constraint name"));
    if (AcceptKeyword("fd")) {
      HIPPO_RETURN_NOT_OK(ExpectKeyword("on"));
      FdSpec spec;
      HIPPO_ASSIGN_OR_RETURN(spec.table, ExpectIdentifier("table name"));
      HIPPO_RETURN_NOT_OK(Expect("("));
      do {
        HIPPO_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier("column"));
        spec.lhs.push_back(std::move(c));
      } while (Accept(","));
      HIPPO_RETURN_NOT_OK(Expect("->"));
      do {
        HIPPO_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier("column"));
        spec.rhs.push_back(std::move(c));
      } while (Accept(","));
      HIPPO_RETURN_NOT_OK(Expect(")"));
      stmt.spec = std::move(spec);
    } else if (AcceptKeyword("exclusion")) {
      HIPPO_RETURN_NOT_OK(ExpectKeyword("on"));
      ExclusionSpec spec;
      HIPPO_ASSIGN_OR_RETURN(spec.table1, ExpectIdentifier("table name"));
      HIPPO_ASSIGN_OR_RETURN(spec.cols1, ParseColumnList());
      HIPPO_RETURN_NOT_OK(Expect(","));
      HIPPO_ASSIGN_OR_RETURN(spec.table2, ExpectIdentifier("table name"));
      HIPPO_ASSIGN_OR_RETURN(spec.cols2, ParseColumnList());
      stmt.spec = std::move(spec);
    } else if (AcceptKeyword("foreign")) {
      HIPPO_RETURN_NOT_OK(ExpectKeyword("key"));
      ForeignKeySpec spec;
      HIPPO_ASSIGN_OR_RETURN(spec.child, ExpectIdentifier("table name"));
      HIPPO_ASSIGN_OR_RETURN(spec.child_cols, ParseColumnList());
      HIPPO_RETURN_NOT_OK(ExpectKeyword("references"));
      HIPPO_ASSIGN_OR_RETURN(spec.parent, ExpectIdentifier("table name"));
      HIPPO_ASSIGN_OR_RETURN(spec.parent_cols, ParseColumnList());
      stmt.spec = std::move(spec);
    } else if (AcceptKeyword("denial")) {
      HIPPO_RETURN_NOT_OK(Expect("("));
      DenialSpec spec;
      do {
        HIPPO_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        spec.atoms.push_back(std::move(ref));
      } while (Accept(","));
      if (AcceptKeyword("where")) {
        HIPPO_ASSIGN_OR_RETURN(spec.where, ParseExpr());
      }
      HIPPO_RETURN_NOT_OK(Expect(")"));
      stmt.spec = std::move(spec);
    } else {
      return Fail("expected FD, EXCLUSION, DENIAL or FOREIGN KEY");
    }
    return Statement{std::move(stmt)};
  }

  Result<std::vector<std::string>> ParseColumnList() {
    HIPPO_RETURN_NOT_OK(Expect("("));
    std::vector<std::string> cols;
    do {
      HIPPO_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier("column"));
      cols.push_back(std::move(c));
    } while (Accept(","));
    HIPPO_RETURN_NOT_OK(Expect(")"));
    return cols;
  }

  // --- queries ------------------------------------------------------------

  Result<std::unique_ptr<QueryExpr>> ParseQuery() {
    HIPPO_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> left, ParseQueryTerm());
    for (;;) {
      SetOpKind op;
      if (AcceptKeyword("union")) {
        op = SetOpKind::kUnion;
      } else if (AcceptKeyword("except")) {
        op = SetOpKind::kExcept;
      } else {
        break;
      }
      if (AcceptKeyword("all")) {
        return Status::NotSupported(
            "UNION/EXCEPT ALL: the engine uses set semantics");
      }
      HIPPO_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> right,
                             ParseQueryTerm());
      auto node = std::make_unique<QueryExpr>();
      node->op = op;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<QueryExpr>> ParseQueryTerm() {
    HIPPO_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> left,
                           ParseQueryPrimary());
    while (AcceptKeyword("intersect")) {
      if (AcceptKeyword("all")) {
        return Status::NotSupported(
            "INTERSECT ALL: the engine uses set semantics");
      }
      HIPPO_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> right,
                             ParseQueryPrimary());
      auto node = std::make_unique<QueryExpr>();
      node->op = SetOpKind::kIntersect;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<std::unique_ptr<QueryExpr>> ParseQueryPrimary() {
    if (Accept("(")) {
      HIPPO_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> q, ParseQuery());
      HIPPO_RETURN_NOT_OK(Expect(")"));
      return q;
    }
    HIPPO_ASSIGN_OR_RETURN(std::unique_ptr<SelectCore> core,
                           ParseSelectCore());
    auto node = std::make_unique<QueryExpr>();
    node->core = std::move(core);
    return node;
  }

  Result<std::unique_ptr<SelectCore>> ParseSelectCore() {
    HIPPO_RETURN_NOT_OK(ExpectKeyword("select"));
    auto core = std::make_unique<SelectCore>();
    core->distinct = AcceptKeyword("distinct");
    do {
      HIPPO_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      core->items.push_back(std::move(item));
    } while (Accept(","));
    HIPPO_RETURN_NOT_OK(ExpectKeyword("from"));
    do {
      HIPPO_ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
      core->from.push_back(std::move(item));
    } while (Accept(","));
    if (AcceptKeyword("where")) {
      HIPPO_ASSIGN_OR_RETURN(core->where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      HIPPO_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        HIPPO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        core->group_by.push_back(std::move(e));
      } while (Accept(","));
    }
    if (AcceptKeyword("having")) {
      HIPPO_ASSIGN_OR_RETURN(core->having, ParseExpr());
    }
    return core;
  }

  Result<ExprPtr> ParseAggCall(const std::string& name) {
    AggFunc fn;
    if (EqualsIgnoreCase(name, "count")) {
      fn = AggFunc::kCount;
    } else if (EqualsIgnoreCase(name, "sum")) {
      fn = AggFunc::kSum;
    } else if (EqualsIgnoreCase(name, "min")) {
      fn = AggFunc::kMin;
    } else if (EqualsIgnoreCase(name, "max")) {
      fn = AggFunc::kMax;
    } else if (EqualsIgnoreCase(name, "avg")) {
      fn = AggFunc::kAvg;
    } else {
      return Fail(("unknown function: " + name).c_str());
    }
    HIPPO_RETURN_NOT_OK(Expect("("));
    if (Accept("*")) {
      if (fn != AggFunc::kCount) {
        return Fail("'*' argument is only valid in COUNT(*)");
      }
      HIPPO_RETURN_NOT_OK(Expect(")"));
      return ExprPtr(std::make_unique<AggCallExpr>(fn, nullptr));
    }
    HIPPO_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    HIPPO_RETURN_NOT_OK(Expect(")"));
    return ExprPtr(std::make_unique<AggCallExpr>(fn, std::move(arg)));
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Accept("*")) {
      item.star = true;
      return item;
    }
    // alias.* form.
    if (Peek().kind == TokenKind::kIdentifier && Peek(1).IsSymbol(".") &&
        Peek(2).IsSymbol("*")) {
      item.star = true;
      item.star_qualifier = Advance().text;
      Advance();  // .
      Advance();  // *
      return item;
    }
    HIPPO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (AcceptKeyword("as")) {
      HIPPO_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
    } else if (Peek().kind == TokenKind::kIdentifier &&
               !IsReservedAfterTable(Peek())) {
      item.alias = Advance().text;
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    HIPPO_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("as")) {
      HIPPO_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
    } else if (Peek().kind == TokenKind::kIdentifier &&
               !IsReservedAfterTable(Peek())) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<FromItem> ParseFromItem() {
    FromItem item;
    HIPPO_ASSIGN_OR_RETURN(item.base, ParseTableRef());
    for (;;) {
      bool inner = AcceptKeyword("inner");
      if (!AcceptKeyword("join")) {
        if (inner) return Fail("expected JOIN after INNER");
        break;
      }
      JoinClause jc;
      HIPPO_ASSIGN_OR_RETURN(jc.table, ParseTableRef());
      HIPPO_RETURN_NOT_OK(ExpectKeyword("on"));
      HIPPO_ASSIGN_OR_RETURN(jc.on, ParseExpr());
      item.joins.push_back(std::move(jc));
    }
    return item;
  }

  // --- expressions --------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    HIPPO_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("or")) {
      HIPPO_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = LogicalExpr::MakeOr(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    HIPPO_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (AcceptKeyword("and")) {
      HIPPO_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = LogicalExpr::MakeAnd(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      HIPPO_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return LogicalExpr::MakeNot(std::move(child));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    HIPPO_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (AcceptKeyword("is")) {
      bool negated = AcceptKeyword("not");
      HIPPO_RETURN_NOT_OK(ExpectKeyword("null"));
      return ExprPtr(
          std::make_unique<IsNullExpr>(std::move(left), negated));
    }
    CompareOp op;
    if (Accept("=")) {
      op = CompareOp::kEq;
    } else if (Accept("<>")) {
      op = CompareOp::kNe;
    } else if (Accept("<=")) {
      op = CompareOp::kLe;
    } else if (Accept(">=")) {
      op = CompareOp::kGe;
    } else if (Accept("<")) {
      op = CompareOp::kLt;
    } else if (Accept(">")) {
      op = CompareOp::kGt;
    } else {
      return left;
    }
    HIPPO_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return ExprPtr(std::make_unique<ComparisonExpr>(op, std::move(left),
                                                    std::move(right)));
  }

  Result<ExprPtr> ParseAdditive() {
    HIPPO_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    for (;;) {
      ArithOp op;
      if (Accept("+")) {
        op = ArithOp::kAdd;
      } else if (Accept("-")) {
        op = ArithOp::kSub;
      } else {
        break;
      }
      HIPPO_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = std::make_unique<ArithmeticExpr>(op, std::move(left),
                                              std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    HIPPO_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    for (;;) {
      ArithOp op;
      if (Accept("*")) {
        op = ArithOp::kMul;
      } else if (Accept("/")) {
        op = ArithOp::kDiv;
      } else if (Accept("%")) {
        op = ArithOp::kMod;
      } else {
        break;
      }
      HIPPO_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = std::make_unique<ArithmeticExpr>(op, std::move(left),
                                              std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept("-")) {
      HIPPO_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      // Fold negative numeric literals directly.
      if (child->kind() == ExprKind::kLiteral) {
        const Value& v = static_cast<const LiteralExpr&>(*child).value();
        if (v.type() == TypeId::kInt) {
          return ExprPtr(
              std::make_unique<LiteralExpr>(Value::Int(-v.AsInt())));
        }
        if (v.type() == TypeId::kDouble) {
          return ExprPtr(
              std::make_unique<LiteralExpr>(Value::Double(-v.AsDouble())));
        }
      }
      return ExprPtr(std::make_unique<ArithmeticExpr>(
          ArithOp::kSub, std::make_unique<LiteralExpr>(Value::Int(0)),
          std::move(child)));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger: {
        Advance();
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Int(std::stoll(t.text))));
      }
      case TokenKind::kDouble: {
        Advance();
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Double(std::stod(t.text))));
      }
      case TokenKind::kString: {
        Advance();
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::String(t.text)));
      }
      case TokenKind::kIdentifier: {
        if (t.IsKeyword("true")) {
          Advance();
          return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(true)));
        }
        if (t.IsKeyword("false")) {
          Advance();
          return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(false)));
        }
        if (t.IsKeyword("null")) {
          Advance();
          return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
        }
        std::string first = Advance().text;
        if (Peek().IsSymbol("(")) {
          return ParseAggCall(first);
        }
        if (Accept(".")) {
          HIPPO_ASSIGN_OR_RETURN(std::string second,
                                 ExpectIdentifier("column name"));
          return ExprPtr(std::make_unique<ColumnRefExpr>(std::move(first),
                                                         std::move(second)));
        }
        return ExprPtr(std::make_unique<ColumnRefExpr>("", std::move(first)));
      }
      case TokenKind::kSymbol: {
        if (Accept("(")) {
          HIPPO_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          HIPPO_RETURN_NOT_OK(Expect(")"));
          return e;
        }
        break;
      }
      case TokenKind::kEnd:
        break;
    }
    return Fail("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& text) {
  HIPPO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  return p.ParseOneStatement();
}

Result<std::vector<Statement>> ParseScript(const std::string& text) {
  HIPPO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  return p.ParseAll();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  HIPPO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  return p.ParseOnlyExpression();
}

}  // namespace hippo::sql
