// Recursive-descent SQL parser for the Hippo statement surface.
//
// Grammar (case-insensitive keywords, `--` comments):
//
//   statement      := create_table | insert | delete | update | copy | drop
//                   | select_stmt | create_constraint
//   copy           := COPY name (FROM | TO) 'path'
//   drop           := DROP (TABLE | CONSTRAINT) name
//   create_table   := CREATE TABLE name '(' col type (',' col type)* ')'
//   insert         := INSERT INTO name VALUES row (',' row)*
//   delete         := DELETE FROM name [WHERE expr]
//   update         := UPDATE name SET col '=' expr (',' col '=' expr)*
//                     [WHERE expr]
//   row            := '(' const_expr (',' const_expr)* ')'
//   select_stmt    := query [ORDER BY order_item (',' order_item)*]
//   query          := term ((UNION | EXCEPT) term)*
//   term           := qprimary (INTERSECT qprimary)*
//   qprimary       := select_core | '(' query ')'
//   select_core    := SELECT [DISTINCT] items FROM from_item (',' from_item)*
//                     [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
//   from_item      := table_ref (JOIN table_ref ON expr)*
//   table_ref      := name [[AS] alias]
//   create_constraint :=
//       CREATE CONSTRAINT name
//         ( FD ON table '(' cols '->' cols ')'
//         | EXCLUSION ON table '(' cols ')' ',' table '(' cols ')'
//         | DENIAL '(' table_ref (',' table_ref)* [WHERE expr] ')' )
//
// UNION/EXCEPT/INTERSECT follow set semantics (the engine is set-based;
// `ALL` is rejected with NotSupported). Expressions support comparison,
// AND/OR/NOT, arithmetic, IS [NOT] NULL, TRUE/FALSE/NULL literals.
#pragma once

#include "common/status.h"
#include "sql/ast.h"

namespace hippo::sql {

/// Parses a single statement (a trailing ';' is permitted).
Result<Statement> ParseStatement(const std::string& text);

/// Parses a script of ';'-separated statements.
Result<std::vector<Statement>> ParseScript(const std::string& text);

/// Parses just a scalar expression (used by tests and constraint builders).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace hippo::sql
