// SQL lexer: turns statement text into a token stream.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace hippo::sql {

enum class TokenKind : uint8_t {
  kIdentifier,   ///< bare identifiers and keywords (normalized to lower case)
  kInteger,
  kDouble,
  kString,       ///< contents of a '...' literal, quotes stripped
  kSymbol,       ///< punctuation / operators, in `text`
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   ///< normalized identifier, literal text, or symbol
  size_t offset = 0;  ///< byte offset in the input (for error messages)

  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword test (keywords are not reserved).
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes `input`. Comments (`-- ...` to end of line) are skipped.
/// Errors: unterminated string literal, illegal character.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace hippo::sql
