// Exact repair enumeration — the "materialize all repairs" baseline.
//
// Under denial constraints the repairs of an instance are exactly the
// maximal independent sets of the conflict hypergraph (every conflict-free
// tuple belongs to every repair). This enumerator is exponential in the
// number of conflicts by nature — which is precisely the paper's argument
// for avoiding repair materialization — and is used as ground truth in
// tests and as the all-repairs series in the benchmarks.
#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/executor.h"
#include "hypergraph/hypergraph.h"

namespace hippo {

class RepairEnumerator {
 public:
  RepairEnumerator(const Catalog& catalog, const ConflictHypergraph& graph)
      : catalog_(catalog), graph_(graph) {}

  /// Enumerates every repair as the set of tuples deleted from the instance
  /// (tuples outside all sets are present in every repair). Each deleted
  /// set is sorted. Errors with NotSupported if more than `limit` repairs
  /// exist. A consistent database yields one repair: the empty deleted set.
  Result<std::vector<std::vector<RowId>>> EnumerateDeletedSets(
      size_t limit) const;

  /// The repairs as row masks ready for query evaluation.
  Result<std::vector<RowMask>> EnumerateMasks(size_t limit) const;

  /// Number of repairs, failing beyond `limit`.
  Result<size_t> CountRepairs(size_t limit) const;

  /// Builds the mask that hides a given deleted set.
  RowMask MaskForDeleted(const std::vector<RowId>& deleted) const;

  /// Mask of the "core": every conflicting tuple removed (the traditional
  /// data-cleaning approach the demo contrasts CQA against).
  RowMask CoreMask() const;

 private:
  const Catalog& catalog_;
  const ConflictHypergraph& graph_;
};

}  // namespace hippo
