#include "repairs/repair_enumerator.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace hippo {

namespace {

/// Recursive branch-and-dedup enumeration of maximal independent sets.
///
/// State: the set of deleted vertices. Find an edge all of whose vertices
/// are still alive; if none, the alive set is independent — keep it if it is
/// maximal (no deleted vertex can be restored). Otherwise branch on deleting
/// each vertex of the violated edge.
///
/// Identical deletion states are reached along many branch orders (on a
/// k-clique, factorially many), so states are memoized: the first violated
/// edge is a deterministic function of the state, making the recursion a
/// DAG over deletion sets. On an FD conflict group of k tuples this cuts
/// the search from exponential to O(k²) states — the enumerator is still
/// worst-case exponential (there can be exponentially many repairs, the
/// very problem the paper's introduction raises), but no longer
/// re-explores.
class Enumerator {
 public:
  Enumerator(const ConflictHypergraph& graph, size_t limit)
      : graph_(graph), limit_(limit) {}

  Status Run() {
    return Recurse();
  }

  std::vector<std::vector<RowId>> TakeResults() {
    std::vector<std::vector<RowId>> out(results_.begin(), results_.end());
    return out;
  }

 private:
  /// Canonical byte key of the current deleted set.
  std::string StateKey() const {
    std::vector<uint64_t> packed;
    packed.reserve(deleted_.size());
    for (const RowId& v : deleted_) packed.push_back(v.Pack());
    std::sort(packed.begin(), packed.end());
    return std::string(reinterpret_cast<const char*>(packed.data()),
                       packed.size() * sizeof(uint64_t));
  }

  Status Recurse() {
    if (!visited_.insert(StateKey()).second) {
      return Status::OK();  // state already explored via another order
    }
    // Find a violated edge (all vertices alive).
    const std::vector<RowId>* violated = nullptr;
    for (size_t e = 0; e < graph_.NumEdgeSlots(); ++e) {
      if (!graph_.EdgeAlive(static_cast<ConflictHypergraph::EdgeId>(e))) {
        continue;
      }
      const std::vector<RowId>& edge = graph_.edge(
          static_cast<ConflictHypergraph::EdgeId>(e));
      bool alive = true;
      for (const RowId& v : edge) {
        if (deleted_.count(v)) {
          alive = false;
          break;
        }
      }
      if (alive) {
        violated = &edge;
        break;
      }
    }
    if (violated == nullptr) {
      // Independent. Maximality: no deleted vertex may be restorable. A
      // deleted vertex v is unrestorable iff some incident edge has all its
      // OTHER vertices alive (restoring v would re-violate it).
      for (const RowId& v : deleted_) {
        bool blocked = false;
        for (auto e : graph_.IncidentEdges(v)) {
          bool others_alive = true;
          for (const RowId& u : graph_.edge(e)) {
            if (u != v && deleted_.count(u)) {
              others_alive = false;
              break;
            }
          }
          if (others_alive) {
            blocked = true;
            break;
          }
        }
        if (!blocked) return Status::OK();  // not maximal; prune
      }
      std::vector<RowId> sorted(deleted_.begin(), deleted_.end());
      std::sort(sorted.begin(), sorted.end());
      results_.insert(std::move(sorted));
      if (results_.size() > limit_) {
        return Status::NotSupported(
            "repair enumeration exceeded the limit of " +
            std::to_string(limit_) + " repairs");
      }
      return Status::OK();
    }
    for (const RowId& v : *violated) {
      deleted_.insert(v);
      HIPPO_RETURN_NOT_OK(Recurse());
      deleted_.erase(v);
    }
    return Status::OK();
  }

  const ConflictHypergraph& graph_;
  size_t limit_;
  VertexSet deleted_;
  std::set<std::vector<RowId>> results_;
  std::unordered_set<std::string> visited_;
};

}  // namespace

Result<std::vector<std::vector<RowId>>>
RepairEnumerator::EnumerateDeletedSets(size_t limit) const {
  Enumerator e(graph_, limit);
  HIPPO_RETURN_NOT_OK(e.Run());
  return e.TakeResults();
}

RowMask RepairEnumerator::MaskForDeleted(
    const std::vector<RowId>& deleted) const {
  RowMask mask;
  // Only tables that actually lose rows need mask entries.
  std::unordered_map<uint32_t, std::vector<bool>> per_table;
  for (const RowId& v : deleted) {
    auto it = per_table.find(v.table);
    if (it == per_table.end()) {
      it = per_table
               .emplace(v.table, std::vector<bool>(
                                     catalog_.table(v.table).NumRows(), true))
               .first;
    }
    it->second[v.row] = false;
  }
  for (auto& [table_id, allowed] : per_table) {
    mask.SetAllowed(table_id, std::move(allowed));
  }
  return mask;
}

Result<std::vector<RowMask>> RepairEnumerator::EnumerateMasks(
    size_t limit) const {
  HIPPO_ASSIGN_OR_RETURN(std::vector<std::vector<RowId>> deleted_sets,
                         EnumerateDeletedSets(limit));
  std::vector<RowMask> masks;
  masks.reserve(deleted_sets.size());
  for (const auto& d : deleted_sets) masks.push_back(MaskForDeleted(d));
  return masks;
}

Result<size_t> RepairEnumerator::CountRepairs(size_t limit) const {
  HIPPO_ASSIGN_OR_RETURN(std::vector<std::vector<RowId>> deleted_sets,
                         EnumerateDeletedSets(limit));
  return deleted_sets.size();
}

RowMask RepairEnumerator::CoreMask() const {
  std::vector<RowId> conflicting = graph_.ConflictingVertices();
  return MaskForDeleted(conflicting);
}

}  // namespace hippo
