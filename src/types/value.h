// The runtime value type of the Hippo engine. Relations hold rows of Values;
// scalar expressions evaluate to Values.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace hippo {

/// Column / value types supported by the engine. This is the set needed by
/// the paper's experiments (integers and strings dominate; doubles and bools
/// round out scalar expressions).
enum class TypeId : uint8_t {
  kNull = 0,   ///< only as the type of the NULL literal before binding
  kBool,
  kInt,        ///< 64-bit signed
  kDouble,
  kString,
};

/// Short SQL-ish name: "BOOLEAN", "INTEGER", "DOUBLE", "VARCHAR", "NULL".
const char* TypeIdToString(TypeId t);

/// Parses a type name as accepted by CREATE TABLE (case-insensitive;
/// accepts common aliases INT/INTEGER/BIGINT, VARCHAR/TEXT/STRING, etc.).
Result<TypeId> TypeIdFromString(const std::string& name);

/// \brief A dynamically typed scalar value (SQL semantics).
///
/// NULL is a distinct value of every type. Comparisons between values of
/// different numeric types coerce int -> double. Ordering places NULL first
/// (only used for deterministic output sorting, not SQL comparisons —
/// three-valued logic is handled by the expression evaluator).
class Value {
 public:
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(TypeId::kBool, b); }
  static Value Int(int64_t i) { return Value(TypeId::kInt, i); }
  static Value Double(double d) { return Value(TypeId::kDouble, d); }
  static Value String(std::string s) {
    return Value(TypeId::kString, std::move(s));
  }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric view: int and double both convert; anything else is a
  /// programmer error (the binder guarantees numeric operands).
  double NumericAsDouble() const;

  /// SQL-literal-ish rendering: NULL, TRUE, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Structural equality: same type (after int/double coercion for numerics)
  /// and same payload. NULL == NULL here (this is *identity*, used for
  /// hashing and set semantics; SQL three-valued `=` lives in the evaluator).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order consistent with operator== (NULL < BOOL < numeric < STRING;
  /// numerics compare by value across int/double).
  bool operator<(const Value& other) const;

  /// Three-way comparison helper returning -1/0/1 under the total order.
  int Compare(const Value& other) const;

  /// Hash consistent with operator== (numeric 5 and 5.0 hash equal).
  size_t Hash() const;

  /// Attempts to cast to `target` (used by INSERT coercion): int<->double,
  /// anything -> string of itself is NOT performed; NULL casts to any type.
  Result<Value> CastTo(TypeId target) const;

 private:
  template <typename T>
  Value(TypeId t, T&& v) : type_(t), data_(std::forward<T>(v)) {}

  TypeId type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// \name Scalar hash primitives
/// Shared by Value::Hash and the columnar engine (Column::HashAt): both
/// representations of the same logical value MUST hash identically, since
/// batch joins probe buckets keyed by these hashes. Numerics hash by their
/// double value so 5 and 5.0 collide with operator==; -0.0 normalizes to
/// 0.0 (they compare equal).
/// @{
inline size_t HashNullScalar() {
  size_t seed = 0;
  HashCombine(&seed, 0x6e756c6cULL);
  return seed;
}
inline size_t HashBoolScalar(bool b) {
  size_t seed = 0;
  HashCombine(&seed, b ? 2u : 1u);
  return seed;
}
inline size_t HashNumericScalar(double d) {
  if (d == 0.0) d = 0.0;
  int64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(d));
  size_t seed = 0;
  HashCombine(&seed, Mix64(static_cast<uint64_t>(bits)));
  return seed;
}
inline size_t HashStringScalar(const std::string& s) {
  size_t seed = 0;
  HashCombineValue(&seed, s);
  return seed;
}
/// @}

/// A row of values.
using Row = std::vector<Value>;

/// Hash of an entire row (combines per-value hashes in order).
size_t HashRow(const Row& row);

/// Lexicographic row comparison under Value's total order.
bool RowLess(const Row& a, const Row& b);

/// Renders a row as "(v1, v2, ...)".
std::string RowToString(const Row& row);

struct RowHasher {
  size_t operator()(const Row& r) const { return HashRow(r); }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const { return a == b; }
};

}  // namespace hippo
