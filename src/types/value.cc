#include "types/value.h"

#include <cmath>
#include <cstring>

#include "common/hash.h"
#include "common/str_util.h"

namespace hippo {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kInt:
      return "INTEGER";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
  }
  return "?";
}

Result<TypeId> TypeIdFromString(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "int" || n == "integer" || n == "bigint" || n == "smallint") {
    return TypeId::kInt;
  }
  if (n == "double" || n == "float" || n == "real" || n == "numeric" ||
      n == "decimal") {
    return TypeId::kDouble;
  }
  if (n == "varchar" || n == "text" || n == "string" || n == "char") {
    return TypeId::kString;
  }
  if (n == "bool" || n == "boolean") {
    return TypeId::kBool;
  }
  return Status::InvalidArgument("unknown type name: " + name);
}

double Value::NumericAsDouble() const {
  if (type_ == TypeId::kInt) return static_cast<double>(AsInt());
  HIPPO_CHECK_MSG(type_ == TypeId::kDouble, "NumericAsDouble on non-numeric");
  return AsDouble();
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case TypeId::kInt:
      return std::to_string(AsInt());
    case TypeId::kDouble: {
      std::string s = StrFormat("%g", AsDouble());
      return s;
    }
    case TypeId::kString:
      return SqlQuote(AsString());
  }
  return "?";
}

namespace {

bool IsNumeric(TypeId t) { return t == TypeId::kInt || t == TypeId::kDouble; }

// Rank used to order values of different type classes.
int TypeRank(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool:
      return 1;
    case TypeId::kInt:
    case TypeId::kDouble:
      return 2;
    case TypeId::kString:
      return 3;
  }
  return 4;
}

}  // namespace

bool Value::operator==(const Value& other) const {
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == TypeId::kInt && other.type_ == TypeId::kInt) {
      return AsInt() == other.AsInt();
    }
    return NumericAsDouble() == other.NumericAsDouble();
  }
  if (type_ != other.type_) return false;
  return data_ == other.data_;
}

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type_), rb = TypeRank(other.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type_) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool: {
      bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case TypeId::kInt:
      if (other.type_ == TypeId::kInt) {
        int64_t a = AsInt(), b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      [[fallthrough]];
    case TypeId::kDouble: {
      double a = NumericAsDouble(), b = other.NumericAsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case TypeId::kString: {
      int c = AsString().compare(other.AsString());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
  return 0;
}

bool Value::operator<(const Value& other) const {
  return Compare(other) < 0;
}

size_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return HashNullScalar();
    case TypeId::kBool:
      return HashBoolScalar(AsBool());
    case TypeId::kInt:
    case TypeId::kDouble:
      return HashNumericScalar(NumericAsDouble());
    case TypeId::kString:
      return HashStringScalar(AsString());
  }
  return 0;
}

Result<Value> Value::CastTo(TypeId target) const {
  if (is_null()) return Value::Null();
  if (type_ == target) return *this;
  if (target == TypeId::kDouble && type_ == TypeId::kInt) {
    return Value::Double(static_cast<double>(AsInt()));
  }
  if (target == TypeId::kInt && type_ == TypeId::kDouble) {
    double d = AsDouble();
    if (std::floor(d) != d) {
      return Status::TypeError(StrFormat(
          "cannot cast non-integral DOUBLE %g to INTEGER losslessly", d));
    }
    return Value::Int(static_cast<int64_t>(d));
  }
  return Status::TypeError(
      StrFormat("cannot cast %s to %s", TypeIdToString(type_),
                TypeIdToString(target)));
}

size_t HashRow(const Row& row) {
  size_t seed = row.size();
  for (const Value& v : row) HashCombine(&seed, v.Hash());
  return seed;
}

bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace hippo
