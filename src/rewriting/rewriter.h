// The query-rewriting baseline (Arenas–Bertossi–Chomicki, PODS'99).
//
// For quantifier-free conjunctive queries (select/join, safe projection —
// no union or difference), the consistent answers can be computed by
// ordinary query evaluation after attaching to every literal the *residues*
// of the constraints it participates in: a tuple assignment is a consistent
// answer iff each contributing tuple survives in every repair, which under
// denial constraints means it participates in no violation. The residue of
// constraint ¬(R(ū) ∧ S(v̄) ∧ φ) at the R-atom is ∀v̄ ¬(S(v̄) ∧ φ), compiled
// here into an anti-join of the scan against the remaining atoms.
//
// This is the competing approach the Hippo demo benchmarks against; its
// limits (no union — hence no disjunctive information — and, in this
// implementation, no difference) are part of the expressiveness comparison.
//
// A second first-order method rides on the same entry point: for
// self-join-free conjunctive queries with *narrowing* projection over
// primary-key tables, the Koutris–Wijsen certain rewriting ("Consistent
// Query Answering for Primary Keys in Logspace") applies whenever the
// query's attack graph is acyclic. Rewrite() tries the ABC residues first
// (they cover safe projections under any universal binary constraints) and
// falls back to the KW construction; RewriteInfo reports which method
// produced the plan so the query router can label the route and validate
// the KW completeness gate against the conflict hypergraph.
#pragma once

#include "catalog/catalog.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "constraints/foreign_key.h"
#include "plan/logical_plan.h"
#include "plan/router.h"

namespace hippo::rewriting {

/// Which first-order construction produced a rewritten plan.
enum class RewriteMethod : uint8_t {
  kAbc,  ///< Arenas–Bertossi–Chomicki residues (safe projection)
  kKw,   ///< Koutris–Wijsen certain rewriting (narrowing projection)
};

struct RewriteInfo {
  RewriteMethod method = RewriteMethod::kAbc;
  /// Tables whose key FD the KW construction quantified over. The caller
  /// must verify TableConflictsAreCliques for each before trusting the
  /// plan (completeness gate under SQL NULLs; see plan/router.h).
  std::vector<uint32_t> kw_fd_tables;
};

class QueryRewriter {
 public:
  QueryRewriter(const Catalog& catalog,
                const std::vector<DenialConstraint>& constraints,
                const std::vector<ForeignKeyConstraint>& foreign_keys = {})
      : catalog_(catalog),
        constraints_(constraints),
        foreign_keys_(foreign_keys) {}

  /// Rewrites a bound plan so that its plain evaluation returns the
  /// consistent answers. NotSupported for queries outside both first-order
  /// classes (union, difference, intersection, aggregates; narrowing
  /// projections that fail the Koutris–Wijsen test).
  Result<PlanNodePtr> Rewrite(const PlanNode& plan,
                              RewriteInfo* info = nullptr);

 private:
  /// Wraps a scan with the residues of every constraint it participates in.
  Result<PlanNodePtr> GuardScan(const ScanNode& scan);

  /// A scan restricted to tuples that appear in at least one repair: not
  /// FK-orphaned, no unary-constraint violation, no self-pair violation of
  /// a same-table binary constraint. Used both as the base of GuardScan and
  /// as the partner side of every binary residue — a partner that is in no
  /// repair can never force a deletion, so counting it would (unsoundly for
  /// completeness) shrink the answer set.
  Result<PlanNodePtr> UnaryCleanScan(uint32_t table_id,
                                     const std::string& table_name,
                                     const std::string& alias);

  Result<PlanNodePtr> RewriteNode(const PlanNode& node);

  /// Koutris–Wijsen certain rewriting for a self-join-free conjunctive
  /// plan over primary-key tables with an acyclic attack graph.
  Result<PlanNodePtr> KwRewrite(const PlanNode& plan, RewriteInfo* info);

  const Catalog& catalog_;
  const std::vector<DenialConstraint>& constraints_;
  std::vector<ForeignKeyConstraint> foreign_keys_;
};

}  // namespace hippo::rewriting
