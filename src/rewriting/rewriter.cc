#include "rewriting/rewriter.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "expr/evaluator.h"
#include "plan/router.h"
#include "plan/sjud.h"

namespace hippo::rewriting {

namespace {

/// Keeps rows where `cond` is FALSE *or NULL*. Residues must remove only
/// tuples that actually violate (cond TRUE); a bare NOT(cond) evaluates
/// NULL when cond does (SQL three-valued logic) and would also drop
/// tuples the conflict detector never flags — e.g. a unary CHECK over a
/// NULL value — making the rewriting incomplete on NULL-bearing data.
ExprPtr NotTrue(ExprPtr cond) {
  ExprPtr isnull = std::make_unique<IsNullExpr>(cond->Clone(), false);
  isnull->set_result_type(TypeId::kBool);
  ExprPtr not_cond = LogicalExpr::MakeNot(std::move(cond));
  not_cond->set_result_type(TypeId::kBool);
  ExprPtr out = LogicalExpr::MakeOr(std::move(not_cond), std::move(isnull));
  out->set_result_type(TypeId::kBool);
  return out;
}

/// Remaps the constraint condition for the anti-join layout where atom `p`
/// forms the left side and the remaining atoms (in order) the right side.
ExprPtr RemapCondition(const DenialConstraint& dc, size_t p) {
  // new left offset: 0 for atom p's columns.
  // new right offsets: others packed in order after the left width.
  std::vector<int> new_offset(dc.arity());
  size_t right_base = dc.atom_width(p);
  size_t acc = right_base;
  for (size_t i = 0; i < dc.arity(); ++i) {
    if (i == p) {
      new_offset[i] = 0;
    } else {
      new_offset[i] = static_cast<int>(acc);
      acc += dc.atom_width(i);
    }
  }
  ExprPtr cond = dc.condition() == nullptr
                     ? std::make_unique<LiteralExpr>(Value::Bool(true))
                     : dc.condition()->Clone();
  VisitColumnRefs(cond.get(), [&dc, &new_offset](ColumnRefExpr* ref) {
    int idx = ref->index();
    for (size_t i = 0; i < dc.arity(); ++i) {
      size_t start = dc.atom_offset(i);
      size_t end = start + dc.atom_width(i);
      if (static_cast<size_t>(idx) >= start &&
          static_cast<size_t>(idx) < end) {
        ref->ShiftIndex(new_offset[i] - static_cast<int>(start));
        return;
      }
    }
    HIPPO_CHECK_MSG(false, "constraint condition index out of range");
  });
  return cond;
}

}  // namespace

Result<PlanNodePtr> QueryRewriter::UnaryCleanScan(
    uint32_t table_id, const std::string& table_name,
    const std::string& alias) {
  const Table& table = catalog_.table(table_id);
  PlanNodePtr current =
      ScanNode::Make(table_id, table_name, alias, table.schema());

  // Foreign-key residue: a child tuple without a parent is in no repair
  // (parents are immutable in the restricted class). Expressed as
  // current − (current ⋉̸ parent).
  for (const ForeignKeyConstraint& fk : foreign_keys_) {
    if (fk.child_table() != table_id) continue;
    const Table& parent = catalog_.table(fk.parent_table());
    PlanNodePtr parent_scan = ScanNode::Make(parent.id(), parent.name(),
                                             parent.name(), parent.schema());
    size_t left_width = current->schema().NumColumns();
    std::vector<ExprPtr> eqs;
    for (size_t i = 0; i < fk.child_columns().size(); ++i) {
      size_t ci = fk.child_columns()[i];
      size_t pi = fk.parent_columns()[i];
      eqs.push_back(std::make_unique<ComparisonExpr>(
          CompareOp::kEq,
          ColumnRefExpr::Bound(ci, current->schema().column(ci).type),
          ColumnRefExpr::Bound(left_width + pi,
                               parent.schema().column(pi).type)));
      eqs.back()->set_result_type(TypeId::kBool);
    }
    PlanNodePtr orphans = std::make_unique<AntiJoinNode>(
        current->Clone(), std::move(parent_scan), AndAll(std::move(eqs)));
    current = std::make_unique<SetOpNode>(
        PlanKind::kDifference, std::move(current), std::move(orphans));
  }

  for (const DenialConstraint& dc : constraints_) {
    // Residue of a unary constraint: ¬φ(x̄) filters the scan directly
    // (NotTrue, not NOT: a NULL φ is not a violation).
    if (dc.IsUnary() && dc.atoms()[0].table_id == table_id) {
      ExprPtr cond = RemapCondition(dc, 0);
      current = std::make_unique<FilterNode>(std::move(current),
                                             NotTrue(std::move(cond)));
      continue;
    }
    // Self-pair residue: a same-table binary constraint can be violated by
    // a single tuple assigned to both atoms (the detector's self-join emits
    // {t, t}, a unary hyperedge) — such a tuple is in no repair either.
    if (dc.IsBinary() && dc.atoms()[0].table_id == table_id &&
        dc.atoms()[1].table_id == table_id) {
      ExprPtr cond;
      if (dc.condition() == nullptr) {
        cond = std::make_unique<LiteralExpr>(Value::Bool(true));
      } else {
        cond = dc.condition()->Clone();
        // Collapse the second atom's columns onto the first (same table:
        // equal widths), turning φ(x̄, ȳ) into φ(x̄, x̄).
        int width = static_cast<int>(dc.atom_width(0));
        VisitColumnRefs(cond.get(), [width](ColumnRefExpr* ref) {
          if (ref->index() >= width) ref->ShiftIndex(-width);
        });
      }
      current = std::make_unique<FilterNode>(std::move(current),
                                             NotTrue(std::move(cond)));
    }
  }
  return current;
}

Result<PlanNodePtr> QueryRewriter::GuardScan(const ScanNode& scan) {
  // Base: tuples that can appear in some repair at all.
  HIPPO_ASSIGN_OR_RETURN(
      PlanNodePtr current,
      UnaryCleanScan(scan.table_id(), scan.table_name(), scan.alias()));

  for (const DenialConstraint& dc : constraints_) {
    if (!dc.IsBinary()) continue;  // unary handled by UnaryCleanScan
    for (size_t p = 0; p < dc.arity(); ++p) {
      if (dc.atoms()[p].table_id != scan.table_id()) continue;
      // Residue ∀ȳ ¬(partner(ȳ) ∧ φ): anti-join against the partner atom.
      // The partner side is itself restricted to tuples present in SOME
      // repair — a partner in no repair (FK orphan, unary violation) can
      // never force this tuple's deletion, and counting it would make the
      // rewriting incomplete.
      size_t o = 1 - p;
      HIPPO_ASSIGN_OR_RETURN(
          PlanNodePtr right,
          UnaryCleanScan(dc.atoms()[o].table_id, dc.atoms()[o].table_name,
                         dc.atoms()[o].alias));
      ExprPtr cond = RemapCondition(dc, p);
      // The anti-join left is `current` (same schema as the scan, width
      // preserved by previous guards), so indexes line up.
      current = std::make_unique<AntiJoinNode>(
          std::move(current), std::move(right), std::move(cond));
    }
  }
  return current;
}

Result<PlanNodePtr> QueryRewriter::RewriteNode(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      if (scan.emit_rowid()) {
        return Status::NotSupported("rowid scans cannot be rewritten");
      }
      return GuardScan(scan);
    }
    case PlanKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(node);
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr child, RewriteNode(node.child(0)));
      return PlanNodePtr(std::make_unique<FilterNode>(
          std::move(child), f.predicate().Clone()));
    }
    case PlanKind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(node);
      if (!IsSafeProjection(p)) {
        return Status::NotSupported(
            "query rewriting requires a quantifier-free query "
            "(safe projection)");
      }
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr child, RewriteNode(node.child(0)));
      std::vector<ExprPtr> exprs;
      for (size_t i = 0; i < p.NumExprs(); ++i) {
        exprs.push_back(p.expr(i).Clone());
      }
      return PlanNodePtr(std::make_unique<ProjectNode>(
          std::move(child), std::move(exprs), p.schema()));
    }
    case PlanKind::kProduct: {
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr left, RewriteNode(node.child(0)));
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr right, RewriteNode(node.child(1)));
      return PlanNodePtr(
          std::make_unique<ProductNode>(std::move(left), std::move(right)));
    }
    case PlanKind::kJoin: {
      const auto& j = static_cast<const JoinNode&>(node);
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr left, RewriteNode(node.child(0)));
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr right, RewriteNode(node.child(1)));
      return PlanNodePtr(std::make_unique<JoinNode>(
          std::move(left), std::move(right), j.condition().Clone()));
    }
    case PlanKind::kSort: {
      const auto& s = static_cast<const SortNode&>(node);
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr child, RewriteNode(node.child(0)));
      std::vector<SortNode::Key> keys;
      for (const SortNode::Key& k : s.keys()) {
        keys.push_back(SortNode::Key{k.expr->Clone(), k.ascending});
      }
      return PlanNodePtr(
          std::make_unique<SortNode>(std::move(child), std::move(keys)));
    }
    case PlanKind::kUnion:
    case PlanKind::kDifference:
    case PlanKind::kIntersect:
      return Status::NotSupported(
          "query rewriting does not support union/difference/intersection "
          "(this is Hippo's expressiveness advantage)");
    case PlanKind::kAntiJoin:
      return Status::NotSupported("anti-joins cannot be rewritten");
    case PlanKind::kAggregate:
      return Status::NotSupported(
          "query rewriting does not support aggregation; use range-consistent"
          " aggregation instead");
  }
  return Status::Internal("unknown plan kind in rewriting");
}

// ---------------------------------------------------------------------------
// Koutris–Wijsen certain rewriting.
//
// For a self-join-free conjunctive query over tables that each carry at
// most one constraint — a primary-key FD covering every column — with an
// acyclic attack graph, the certain answers are first-order computable
// even under *narrowing* projection. The construction recurses on an
// unattacked atom F:
//
//   Sub      = certain answers of the remaining atoms (recursively), free
//              on the classes shared with F or with the answer
//   Good     = σ_local(F ⋈ Sub)             (candidate witnesses w)
//   AllPairs = Good ⋈_φ F                   (φ = the FD's violation
//              condition: w's conflict neighbors t — NOT mere key
//              equality, which under SQL NULLs also pairs tuples that
//              never conflict and would wrongly disqualify witnesses)
//   GoodPair = pairs where t itself extends to the same answer
//   Certain  = Good − π_w(AllPairs − GoodPair)
//
// Soundness follows from repair maximality: if a witness w is deleted from
// a repair, some conflict neighbor t of w is present (the only edges on a
// KW table are its FD's binary edges), and t being "good for the answer"
// re-derives the tuple. Completeness needs the attack graph acyclic
// (Koutris–Wijsen) *and* clique conflict blocks — the router checks
// TableConflictsAreCliques before trusting this plan.

namespace {

/// The column (name/type) representing a variable class, taken from the
/// class's first occurrence.
Column ClassColumn(const ConjunctiveShape& shape, size_t cls) {
  size_t pos = shape.class_rep[cls];
  for (const ConjunctiveAtom& atom : shape.atoms) {
    if (pos >= atom.offset && pos < atom.offset + atom.width) {
      return atom.scan->schema().column(pos - atom.offset);
    }
  }
  HIPPO_CHECK_MSG(false, "class representative outside every atom");
  return Column();
}

ExprPtr BoundRef(size_t idx, TypeId type) {
  return ColumnRefExpr::Bound(idx, type);
}

ExprPtr EqRefs(size_t l, TypeId lt, size_t r, TypeId rt) {
  auto eq = std::make_unique<ComparisonExpr>(CompareOp::kEq, BoundRef(l, lt),
                                             BoundRef(r, rt));
  eq->set_result_type(TypeId::kBool);
  return eq;
}

/// SQL IS NOT DISTINCT FROM: equal, or both NULL. Used for answer-value
/// agreement (an answer tuple may legitimately carry NULLs; plain `=`
/// would never let a neighbor confirm it).
ExprPtr IsNotDistinct(size_t l, TypeId lt, size_t r, TypeId rt) {
  ExprPtr eq = EqRefs(l, lt, r, rt);
  ExprPtr lnull = std::make_unique<IsNullExpr>(BoundRef(l, lt), false);
  lnull->set_result_type(TypeId::kBool);
  ExprPtr rnull = std::make_unique<IsNullExpr>(BoundRef(r, rt), false);
  rnull->set_result_type(TypeId::kBool);
  ExprPtr both = LogicalExpr::MakeAnd(std::move(lnull), std::move(rnull));
  both->set_result_type(TypeId::kBool);
  ExprPtr out = LogicalExpr::MakeOr(std::move(eq), std::move(both));
  out->set_result_type(TypeId::kBool);
  return out;
}

ExprPtr ShiftedClone(const Expr& e, int delta) {
  ExprPtr c = e.Clone();
  if (delta != 0) {
    VisitColumnRefs(c.get(),
                    [delta](ColumnRefExpr* ref) { ref->ShiftIndex(delta); });
  }
  return c;
}

/// Projection onto `positions` of the child schema, output schema `cols`.
PlanNodePtr ProjectPositions(PlanNodePtr child,
                             const std::vector<size_t>& positions,
                             Schema out_schema) {
  std::vector<ExprPtr> exprs;
  exprs.reserve(positions.size());
  for (size_t p : positions) {
    exprs.push_back(BoundRef(p, child->schema().column(p).type));
  }
  return std::make_unique<ProjectNode>(std::move(child), std::move(exprs),
                                       std::move(out_schema));
}

/// Per-query state shared by the recursion levels.
struct KwCtx {
  const ConjunctiveShape* shape = nullptr;
  std::vector<const DenialConstraint*> fd;       ///< per atom; null = no key FD
  std::vector<std::vector<size_t>> key_classes;  ///< per atom
  std::vector<std::vector<size_t>> var_classes;  ///< per atom, deduplicated
  /// Per atom: class -> first local column carrying it.
  std::vector<std::unordered_map<size_t, size_t>> local_rep;
};

Result<PlanNodePtr> KwBuild(const KwCtx& ctx,
                            const std::vector<size_t>& remaining,
                            const std::vector<size_t>& answer_classes) {
  const ConjunctiveShape& shape = *ctx.shape;

  // Re-derive the attack graph at this level: the free classes grew, so
  // attacks only disappear; an unattacked atom exists whenever the
  // top-level graph was acyclic.
  std::vector<std::vector<size_t>> keys, vars;
  for (size_t a : remaining) {
    keys.push_back(ctx.key_classes[a]);
    vars.push_back(ctx.var_classes[a]);
  }
  AttackGraph graph =
      BuildAttackGraph(keys, vars, answer_classes, shape.num_classes);
  std::optional<size_t> pivot = graph.UnattackedAtom();
  if (!pivot.has_value()) {
    return Status::NotSupported(
        "attack graph is cyclic: certain answers for this query are "
        "coNP-complete (Koutris-Wijsen)");
  }
  size_t f = remaining[*pivot];
  const ConjunctiveAtom& atom = shape.atoms[f];
  const Schema& scan_schema = atom.scan->schema();
  size_t wf = atom.width;
  std::vector<size_t> rest;
  for (size_t a : remaining) {
    if (a != f) rest.push_back(a);
  }

  // Recurse over the remaining atoms, free on the classes they share with
  // the answer or with F.
  PlanNodePtr sub, sub2;
  std::vector<size_t> sub_classes;
  if (!rest.empty()) {
    std::unordered_set<size_t> rest_vars;
    for (size_t a : rest) {
      rest_vars.insert(ctx.var_classes[a].begin(), ctx.var_classes[a].end());
    }
    for (size_t c : answer_classes) {
      if (rest_vars.count(c) != 0) sub_classes.push_back(c);
    }
    for (size_t c : ctx.var_classes[f]) {
      if (rest_vars.count(c) != 0 &&
          std::find(sub_classes.begin(), sub_classes.end(), c) ==
              sub_classes.end()) {
        sub_classes.push_back(c);
      }
    }
    if (sub_classes.empty()) {
      // A subquery sharing nothing with F or the answer is a Boolean
      // certainty question; its certain answers can be disjunctive across
      // repairs, which no single variable binding captures.
      return Status::NotSupported(
          "disconnected Boolean subquery is outside the implemented "
          "Koutris-Wijsen class");
    }
    HIPPO_ASSIGN_OR_RETURN(sub, KwBuild(ctx, rest, sub_classes));
    sub2 = sub->Clone();
  }
  size_t ws = sub_classes.size();
  size_t w = wf + ws;
  auto sub_idx = [&](size_t cls) -> size_t {
    auto it = std::find(sub_classes.begin(), sub_classes.end(), cls);
    HIPPO_CHECK_MSG(it != sub_classes.end(), "class not in subquery output");
    return static_cast<size_t>(it - sub_classes.begin());
  };
  auto sub_type = [&](size_t cls) { return ClassColumn(shape, cls).type; };

  // Good witnesses: F ⋈ Sub with F's local predicates.
  PlanNodePtr good = atom.scan->Clone();
  if (sub != nullptr) {
    std::vector<ExprPtr> eqs;
    for (size_t c : sub_classes) {
      auto it = ctx.local_rep[f].find(c);
      if (it == ctx.local_rep[f].end()) continue;
      eqs.push_back(EqRefs(it->second, scan_schema.column(it->second).type,
                           wf + sub_idx(c), sub_type(c)));
    }
    good = std::make_unique<JoinNode>(std::move(good), std::move(sub),
                                      AndAll(std::move(eqs)));
  }
  if (!shape.atom_local[f].empty()) {
    std::vector<ExprPtr> locals;
    for (const ExprPtr& e : shape.atom_local[f]) locals.push_back(e->Clone());
    good = std::make_unique<FilterNode>(std::move(good),
                                        AndAll(std::move(locals)));
  }

  // Position of an answer class within `good`.
  auto rep_in_good = [&](size_t cls) -> size_t {
    auto it = ctx.local_rep[f].find(cls);
    if (it != ctx.local_rep[f].end()) return it->second;
    return wf + sub_idx(cls);
  };

  PlanNodePtr certain;
  if (ctx.fd[f] == nullptr) {
    // No constraint on F's table: every F-tuple is in every repair.
    certain = std::move(good);
  } else {
    const Expr* phi = ctx.fd[f]->condition();
    HIPPO_CHECK_MSG(phi != nullptr, "FD constraint without a condition");
    Schema good_schema = good->schema();

    // AllPairs = Good ⋈_φ F: each witness with its conflict neighbors.
    // φ is bound over two copies of F's schema at offsets 0 and wf; the
    // witness's F-columns already sit at 0, the neighbor lands after the
    // sub columns, so only the second copy shifts.
    ExprPtr phi_cond = phi->Clone();
    VisitColumnRefs(phi_cond.get(), [&](ColumnRefExpr* ref) {
      if (ref->index() >= static_cast<int>(wf)) {
        ref->ShiftIndex(static_cast<int>(ws));
      }
    });
    PlanNodePtr all_pairs = std::make_unique<JoinNode>(
        good->Clone(), atom.scan->Clone(), std::move(phi_cond));
    size_t t_off = w;

    // A neighbor t is good for the answer when it satisfies F's local
    // predicates, agrees with the witness on every answer class, and (when
    // there are other atoms) joins some certain sub-answer of its own.
    std::vector<ExprPtr> conds;
    for (const ExprPtr& e : shape.atom_local[f]) {
      conds.push_back(ShiftedClone(*e, static_cast<int>(t_off)));
    }
    for (size_t cls : answer_classes) {
      auto it = ctx.local_rep[f].find(cls);
      if (it != ctx.local_rep[f].end()) {
        conds.push_back(IsNotDistinct(
            rep_in_good(cls), good_schema.column(rep_in_good(cls)).type,
            t_off + it->second, scan_schema.column(it->second).type));
      } else {
        conds.push_back(IsNotDistinct(
            wf + sub_idx(cls), sub_type(cls),
            t_off + wf + sub_idx(cls), sub_type(cls)));
      }
    }
    PlanNodePtr good_pairs;
    if (sub2 != nullptr) {
      for (size_t c : sub_classes) {
        auto it = ctx.local_rep[f].find(c);
        if (it == ctx.local_rep[f].end()) continue;
        conds.push_back(EqRefs(t_off + it->second,
                               scan_schema.column(it->second).type,
                               t_off + wf + sub_idx(c), sub_type(c)));
      }
      PlanNodePtr exist = std::make_unique<JoinNode>(
          all_pairs->Clone(), std::move(sub2), AndAll(std::move(conds)));
      std::vector<size_t> first(w + wf);
      for (size_t i = 0; i < first.size(); ++i) first[i] = i;
      good_pairs = ProjectPositions(std::move(exist), first,
                                    all_pairs->schema());
    } else {
      good_pairs = std::make_unique<FilterNode>(all_pairs->Clone(),
                                                AndAll(std::move(conds)));
    }
    PlanNodePtr bad = std::make_unique<SetOpNode>(
        PlanKind::kDifference, std::move(all_pairs), std::move(good_pairs));
    std::vector<size_t> witness_cols(w);
    for (size_t i = 0; i < w; ++i) witness_cols[i] = i;
    PlanNodePtr bad_w =
        ProjectPositions(std::move(bad), witness_cols, good_schema);
    certain = std::make_unique<SetOpNode>(PlanKind::kDifference,
                                          std::move(good), std::move(bad_w));
  }

  std::vector<size_t> out_positions;
  Schema out_schema;
  for (size_t cls : answer_classes) {
    out_positions.push_back(rep_in_good(cls));
    out_schema.AddColumn(ClassColumn(shape, cls));
  }
  return ProjectPositions(std::move(certain), out_positions,
                          std::move(out_schema));
}

}  // namespace

Result<PlanNodePtr> QueryRewriter::KwRewrite(const PlanNode& plan,
                                             RewriteInfo* info) {
  HIPPO_ASSIGN_OR_RETURN(ConjunctiveShape shape, DecomposeConjunctive(plan));
  for (size_t i = 0; i < shape.atoms.size(); ++i) {
    for (size_t j = i + 1; j < shape.atoms.size(); ++j) {
      if (shape.atoms[i].table_id == shape.atoms[j].table_id) {
        return Status::NotSupported(
            "self-join over table " + shape.atoms[i].table_name +
            "; outside the Koutris-Wijsen class");
      }
    }
  }

  KwCtx ctx;
  ctx.shape = &shape;
  std::vector<uint32_t> fd_tables;
  for (size_t a = 0; a < shape.atoms.size(); ++a) {
    const ConjunctiveAtom& atom = shape.atoms[a];
    HIPPO_ASSIGN_OR_RETURN(
        std::vector<size_t> key_local,
        KwKeyColumns(atom.table_id, catalog_, constraints_, foreign_keys_));
    const DenialConstraint* fd = nullptr;
    for (const DenialConstraint& dc : constraints_) {
      for (const ConstraintAtom& ca : dc.atoms()) {
        if (ca.table_id == atom.table_id) { fd = &dc; break; }
      }
      if (fd != nullptr) break;
    }
    ctx.fd.push_back(fd);
    if (fd != nullptr) fd_tables.push_back(atom.table_id);

    std::vector<size_t> kc, vc;
    for (size_t k : key_local) {
      size_t cls = shape.class_of[atom.offset + k];
      if (std::find(kc.begin(), kc.end(), cls) == kc.end()) kc.push_back(cls);
    }
    std::unordered_map<size_t, size_t> rep;
    for (size_t c = 0; c < atom.width; ++c) {
      size_t cls = shape.class_of[atom.offset + c];
      if (rep.emplace(cls, c).second) vc.push_back(cls);
    }
    ctx.key_classes.push_back(std::move(kc));
    ctx.var_classes.push_back(std::move(vc));
    ctx.local_rep.push_back(std::move(rep));
  }

  std::vector<size_t> free_classes = shape.FreeClasses();
  std::vector<size_t> all_atoms(shape.atoms.size());
  for (size_t i = 0; i < all_atoms.size(); ++i) all_atoms[i] = i;
  HIPPO_ASSIGN_OR_RETURN(PlanNodePtr certain,
                         KwBuild(ctx, all_atoms, free_classes));

  // Map the per-class output back onto the original projection (order,
  // duplicates, names) and re-apply a root ORDER BY.
  std::vector<size_t> out_positions;
  for (size_t pos : shape.project_cols) {
    size_t cls = shape.class_of[pos];
    auto it = std::find(free_classes.begin(), free_classes.end(), cls);
    HIPPO_CHECK_MSG(it != free_classes.end(), "projected class not free");
    out_positions.push_back(static_cast<size_t>(it - free_classes.begin()));
  }
  PlanNodePtr out = ProjectPositions(std::move(certain), out_positions,
                                     shape.project->schema());
  if (shape.root_sort != nullptr) {
    std::vector<SortNode::Key> keys;
    for (const SortNode::Key& k : shape.root_sort->keys()) {
      keys.push_back(SortNode::Key{k.expr->Clone(), k.ascending});
    }
    out = std::make_unique<SortNode>(std::move(out), std::move(keys));
  }
  if (info != nullptr) {
    info->method = RewriteMethod::kKw;
    info->kw_fd_tables = std::move(fd_tables);
  }
  return out;
}

Result<PlanNodePtr> QueryRewriter::Rewrite(const PlanNode& plan,
                                           RewriteInfo* info) {
  // Both methods quantify over single partner atoms, which is sound and
  // complete only for universal *binary* constraints: a residue against a
  // 3+-atom constraint would need the remaining atoms to be jointly
  // realizable in one repair, which single anti-joins cannot express. The
  // check is scoped to constraints that can actually reach the plan — an
  // atom on a scanned table, or on a partner table the residues quantify
  // over (one hop through a binary constraint); a wider constraint
  // elsewhere in the schema is irrelevant to this query.
  std::unordered_set<uint32_t> relevant = CollectPlanTables(plan);
  for (const DenialConstraint& dc : constraints_) {
    if (!dc.IsBinary()) continue;
    bool touches = false;
    for (const ConstraintAtom& atom : dc.atoms()) {
      if (relevant.count(atom.table_id) != 0) { touches = true; break; }
    }
    if (touches) {
      for (const ConstraintAtom& atom : dc.atoms()) {
        relevant.insert(atom.table_id);
      }
    }
  }
  for (const DenialConstraint& dc : constraints_) {
    if (dc.arity() <= 2) continue;
    for (const ConstraintAtom& atom : dc.atoms()) {
      if (relevant.count(atom.table_id) != 0) {
        return Status::NotSupported(
            "query rewriting supports universal binary constraints only; "
            "constraint " + dc.name() + " has " +
            std::to_string(dc.arity()) + " atoms");
      }
    }
  }

  Result<PlanNodePtr> abc = RewriteNode(plan);
  if (abc.ok()) {
    if (info != nullptr) {
      info->method = RewriteMethod::kAbc;
      info->kw_fd_tables.clear();
    }
    return abc;
  }
  if (abc.status().code() != StatusCode::kNotSupported) return abc;

  Result<PlanNodePtr> kw = KwRewrite(plan, info);
  if (kw.ok() || kw.status().code() != StatusCode::kNotSupported) return kw;
  return Status::NotSupported(abc.status().message() +
                              "; Koutris-Wijsen: " + kw.status().message());
}

}  // namespace hippo::rewriting
