#include "rewriting/rewriter.h"

#include "expr/evaluator.h"
#include "plan/sjud.h"

namespace hippo::rewriting {

namespace {

/// Remaps the constraint condition for the anti-join layout where atom `p`
/// forms the left side and the remaining atoms (in order) the right side.
ExprPtr RemapCondition(const DenialConstraint& dc, size_t p) {
  // new left offset: 0 for atom p's columns.
  // new right offsets: others packed in order after the left width.
  std::vector<int> new_offset(dc.arity());
  size_t right_base = dc.atom_width(p);
  size_t acc = right_base;
  for (size_t i = 0; i < dc.arity(); ++i) {
    if (i == p) {
      new_offset[i] = 0;
    } else {
      new_offset[i] = static_cast<int>(acc);
      acc += dc.atom_width(i);
    }
  }
  ExprPtr cond = dc.condition() == nullptr
                     ? std::make_unique<LiteralExpr>(Value::Bool(true))
                     : dc.condition()->Clone();
  VisitColumnRefs(cond.get(), [&dc, &new_offset](ColumnRefExpr* ref) {
    int idx = ref->index();
    for (size_t i = 0; i < dc.arity(); ++i) {
      size_t start = dc.atom_offset(i);
      size_t end = start + dc.atom_width(i);
      if (static_cast<size_t>(idx) >= start &&
          static_cast<size_t>(idx) < end) {
        ref->ShiftIndex(new_offset[i] - static_cast<int>(start));
        return;
      }
    }
    HIPPO_CHECK_MSG(false, "constraint condition index out of range");
  });
  return cond;
}

}  // namespace

Result<PlanNodePtr> QueryRewriter::UnaryCleanScan(
    uint32_t table_id, const std::string& table_name,
    const std::string& alias) {
  const Table& table = catalog_.table(table_id);
  PlanNodePtr current =
      ScanNode::Make(table_id, table_name, alias, table.schema());

  // Foreign-key residue: a child tuple without a parent is in no repair
  // (parents are immutable in the restricted class). Expressed as
  // current − (current ⋉̸ parent).
  for (const ForeignKeyConstraint& fk : foreign_keys_) {
    if (fk.child_table() != table_id) continue;
    const Table& parent = catalog_.table(fk.parent_table());
    PlanNodePtr parent_scan = ScanNode::Make(parent.id(), parent.name(),
                                             parent.name(), parent.schema());
    size_t left_width = current->schema().NumColumns();
    std::vector<ExprPtr> eqs;
    for (size_t i = 0; i < fk.child_columns().size(); ++i) {
      size_t ci = fk.child_columns()[i];
      size_t pi = fk.parent_columns()[i];
      eqs.push_back(std::make_unique<ComparisonExpr>(
          CompareOp::kEq,
          ColumnRefExpr::Bound(ci, current->schema().column(ci).type),
          ColumnRefExpr::Bound(left_width + pi,
                               parent.schema().column(pi).type)));
      eqs.back()->set_result_type(TypeId::kBool);
    }
    PlanNodePtr orphans = std::make_unique<AntiJoinNode>(
        current->Clone(), std::move(parent_scan), AndAll(std::move(eqs)));
    current = std::make_unique<SetOpNode>(
        PlanKind::kDifference, std::move(current), std::move(orphans));
  }

  for (const DenialConstraint& dc : constraints_) {
    // Residue of a unary constraint: ¬φ(x̄) filters the scan directly.
    if (dc.IsUnary() && dc.atoms()[0].table_id == table_id) {
      ExprPtr cond = RemapCondition(dc, 0);
      current = std::make_unique<FilterNode>(
          std::move(current), LogicalExpr::MakeNot(std::move(cond)));
      continue;
    }
    // Self-pair residue: a same-table binary constraint can be violated by
    // a single tuple assigned to both atoms (the detector's self-join emits
    // {t, t}, a unary hyperedge) — such a tuple is in no repair either.
    if (dc.IsBinary() && dc.atoms()[0].table_id == table_id &&
        dc.atoms()[1].table_id == table_id) {
      ExprPtr cond;
      if (dc.condition() == nullptr) {
        cond = std::make_unique<LiteralExpr>(Value::Bool(true));
      } else {
        cond = dc.condition()->Clone();
        // Collapse the second atom's columns onto the first (same table:
        // equal widths), turning φ(x̄, ȳ) into φ(x̄, x̄).
        int width = static_cast<int>(dc.atom_width(0));
        VisitColumnRefs(cond.get(), [width](ColumnRefExpr* ref) {
          if (ref->index() >= width) ref->ShiftIndex(-width);
        });
      }
      current = std::make_unique<FilterNode>(
          std::move(current), LogicalExpr::MakeNot(std::move(cond)));
    }
  }
  return current;
}

Result<PlanNodePtr> QueryRewriter::GuardScan(const ScanNode& scan) {
  // Base: tuples that can appear in some repair at all.
  HIPPO_ASSIGN_OR_RETURN(
      PlanNodePtr current,
      UnaryCleanScan(scan.table_id(), scan.table_name(), scan.alias()));

  for (const DenialConstraint& dc : constraints_) {
    if (!dc.IsBinary()) continue;  // unary handled by UnaryCleanScan
    for (size_t p = 0; p < dc.arity(); ++p) {
      if (dc.atoms()[p].table_id != scan.table_id()) continue;
      // Residue ∀ȳ ¬(partner(ȳ) ∧ φ): anti-join against the partner atom.
      // The partner side is itself restricted to tuples present in SOME
      // repair — a partner in no repair (FK orphan, unary violation) can
      // never force this tuple's deletion, and counting it would make the
      // rewriting incomplete.
      size_t o = 1 - p;
      HIPPO_ASSIGN_OR_RETURN(
          PlanNodePtr right,
          UnaryCleanScan(dc.atoms()[o].table_id, dc.atoms()[o].table_name,
                         dc.atoms()[o].alias));
      ExprPtr cond = RemapCondition(dc, p);
      // The anti-join left is `current` (same schema as the scan, width
      // preserved by previous guards), so indexes line up.
      current = std::make_unique<AntiJoinNode>(
          std::move(current), std::move(right), std::move(cond));
    }
  }
  return current;
}

Result<PlanNodePtr> QueryRewriter::RewriteNode(const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      if (scan.emit_rowid()) {
        return Status::NotSupported("rowid scans cannot be rewritten");
      }
      return GuardScan(scan);
    }
    case PlanKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(node);
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr child, RewriteNode(node.child(0)));
      return PlanNodePtr(std::make_unique<FilterNode>(
          std::move(child), f.predicate().Clone()));
    }
    case PlanKind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(node);
      if (!IsSafeProjection(p)) {
        return Status::NotSupported(
            "query rewriting requires a quantifier-free query "
            "(safe projection)");
      }
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr child, RewriteNode(node.child(0)));
      std::vector<ExprPtr> exprs;
      for (size_t i = 0; i < p.NumExprs(); ++i) {
        exprs.push_back(p.expr(i).Clone());
      }
      return PlanNodePtr(std::make_unique<ProjectNode>(
          std::move(child), std::move(exprs), p.schema()));
    }
    case PlanKind::kProduct: {
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr left, RewriteNode(node.child(0)));
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr right, RewriteNode(node.child(1)));
      return PlanNodePtr(
          std::make_unique<ProductNode>(std::move(left), std::move(right)));
    }
    case PlanKind::kJoin: {
      const auto& j = static_cast<const JoinNode&>(node);
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr left, RewriteNode(node.child(0)));
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr right, RewriteNode(node.child(1)));
      return PlanNodePtr(std::make_unique<JoinNode>(
          std::move(left), std::move(right), j.condition().Clone()));
    }
    case PlanKind::kSort: {
      const auto& s = static_cast<const SortNode&>(node);
      HIPPO_ASSIGN_OR_RETURN(PlanNodePtr child, RewriteNode(node.child(0)));
      std::vector<SortNode::Key> keys;
      for (const SortNode::Key& k : s.keys()) {
        keys.push_back(SortNode::Key{k.expr->Clone(), k.ascending});
      }
      return PlanNodePtr(
          std::make_unique<SortNode>(std::move(child), std::move(keys)));
    }
    case PlanKind::kUnion:
    case PlanKind::kDifference:
    case PlanKind::kIntersect:
      return Status::NotSupported(
          "query rewriting does not support union/difference/intersection "
          "(this is Hippo's expressiveness advantage)");
    case PlanKind::kAntiJoin:
      return Status::NotSupported("anti-joins cannot be rewritten");
    case PlanKind::kAggregate:
      return Status::NotSupported(
          "query rewriting does not support aggregation; use range-consistent"
          " aggregation instead");
  }
  return Status::Internal("unknown plan kind in rewriting");
}

Result<PlanNodePtr> QueryRewriter::Rewrite(const PlanNode& plan) {
  // The rewriting method is sound and complete for *universal binary*
  // constraints (the class the paper names); a residue against a 3+-atom
  // constraint would need the remaining atoms to be jointly realizable in
  // one repair, which single anti-joins cannot express.
  for (const DenialConstraint& dc : constraints_) {
    if (dc.arity() > 2) {
      return Status::NotSupported(
          "query rewriting supports universal binary constraints only; "
          "constraint " + dc.name() + " has " +
          std::to_string(dc.arity()) + " atoms");
    }
  }
  return RewriteNode(plan);
}

}  // namespace hippo::rewriting
